package simd

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
)

// fusedLens are the equivalence-test lengths: empty, sub-width, one lane shy
// of a block, exact blocks, and block+remainder tails.
var fusedLens = []int{0, 1, 15, 16, 17, 33}

func randRows(rng *rand.Rand, n, dim int) [][]float32 {
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = randSlice(rng, dim)
	}
	return rows
}

// TestDotManyBiasMatchesScalarReference checks the fused forward kernel
// against per-row scalar dots in both modes and all three precisions.
func TestDotManyBiasMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, dim := range fusedLens {
				const nRows = 7
				rows := randRows(rng, nRows, dim)
				bias := randSlice(rng, nRows)
				h := randSlice(rng, dim)
				hBF := bf16.FromSlice(h)
				ids := []int32{3, 0, 6, 3, 1} // repeats allowed
				out := make([]float32, len(ids))

				DotManyBias(rows, bias, ids, h, out)
				for k, id := range ids {
					want := dotScalar(rows[id], h) + bias[id]
					if !approxEqual(float64(out[k]), float64(want), 1e-4) {
						t.Errorf("%v dim=%d: DotManyBias[%d]=%g want %g", m, dim, k, out[k], want)
					}
				}

				// BF16Act: FP32 rows against the BF16 activation.
				DotManyBiasBF16Act(rows, bias, ids, hBF, out)
				for k, id := range ids {
					want := dotScalar(rows[id], bf16.ToSlice(hBF)) + bias[id]
					if !approxEqual(float64(out[k]), float64(want), 1e-4) {
						t.Errorf("%v dim=%d: DotManyBiasBF16Act[%d]=%g want %g", m, dim, k, out[k], want)
					}
				}

				// BF16Both: BF16 rows against the BF16 activation.
				rowsBF := make([][]bf16.BF16, nRows)
				for i := range rowsBF {
					rowsBF[i] = bf16.FromSlice(rows[i])
				}
				DotManyBiasBF16(rowsBF, bias, ids, hBF, out)
				for k, id := range ids {
					want := dotScalar(bf16.ToSlice(rowsBF[id]), bf16.ToSlice(hBF)) + bias[id]
					if !approxEqual(float64(out[k]), float64(want), 1e-4) {
						t.Errorf("%v dim=%d: DotManyBiasBF16[%d]=%g want %g", m, dim, k, out[k], want)
					}
				}
			}
		})
	}
}

func TestDotManyBiasPanics(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4}}
	bias := []float32{0, 0}
	h := []float32{1, 1}
	for name, f := range map[string]func(){
		"short out":    func() { DotManyBias(rows, bias, []int32{0, 1}, h, make([]float32, 1)) },
		"row mismatch": func() { DotManyBias(rows, bias, []int32{0}, []float32{1}, make([]float32, 1)) },
		"short out bf16act": func() {
			DotManyBiasBF16Act(rows, bias, []int32{0, 1}, make([]bf16.BF16, 2), make([]float32, 1))
		},
		"short out bf16": func() {
			DotManyBiasBF16([][]bf16.BF16{{0}}, bias, []int32{0, 0}, make([]bf16.BF16, 1), make([]float32, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAxpyTwoMatchesTwoAxpys checks the fused backward walk against two
// independent scalar axpys across odd lengths and both modes.
func TestAxpyTwoMatchesTwoAxpys(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, n := range fusedLens {
				h := randSlice(rng, n)
				w := randSlice(rng, n)
				grad0 := randSlice(rng, n)
				dh0 := randSlice(rng, n)
				gz := float32(rng.NormFloat64())

				grad := append([]float32(nil), grad0...)
				dh := append([]float32(nil), dh0...)
				AxpyTwo(gz, h, grad, w, dh)

				wantGrad := append([]float32(nil), grad0...)
				wantDh := append([]float32(nil), dh0...)
				axpyScalar(gz, h, wantGrad)
				axpyScalar(gz, w, wantDh)
				for i := 0; i < n; i++ {
					if !approxEqual(float64(grad[i]), float64(wantGrad[i]), 1e-5) {
						t.Errorf("%v n=%d: grad[%d]=%g want %g", m, n, i, grad[i], wantGrad[i])
					}
					if !approxEqual(float64(dh[i]), float64(wantDh[i]), 1e-5) {
						t.Errorf("%v n=%d: dh[%d]=%g want %g", m, n, i, dh[i], wantDh[i])
					}
				}
			}
		})
	}
}

func TestAxpyTwoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AxpyTwo length mismatch did not panic")
		}
	}()
	AxpyTwo(1, make([]float32, 2), make([]float32, 2), make([]float32, 3), make([]float32, 2))
}

// TestAdamStepZeroMatchesStepThenZero checks that the fused optimizer pass
// is bit-identical to AdamStep followed by Zero, in both modes and across
// odd lengths, and that it clears the gradient.
func TestAdamStepZeroMatchesStepThenZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	p := NewAdamParams(0.01, 0.9, 0.999, 1e-8, 3)
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, n := range fusedLens {
				w0 := randSlice(rng, n)
				m0 := randSlice(rng, n)
				v0 := randSlice(rng, n)
				for i := range v0 {
					v0[i] = v0[i] * v0[i] // second moment must be non-negative
				}
				g0 := randSlice(rng, n)

				wf := append([]float32(nil), w0...)
				mf := append([]float32(nil), m0...)
				vf := append([]float32(nil), v0...)
				gf := append([]float32(nil), g0...)
				AdamStepZero(wf, mf, vf, gf, p)

				wr := append([]float32(nil), w0...)
				mr := append([]float32(nil), m0...)
				vr := append([]float32(nil), v0...)
				gr := append([]float32(nil), g0...)
				adamScalar(wr, mr, vr, gr, p)
				Zero(gr)

				for i := 0; i < n; i++ {
					if wf[i] != wr[i] || mf[i] != mr[i] || vf[i] != vr[i] {
						t.Errorf("%v n=%d i=%d: fused (%g,%g,%g) reference (%g,%g,%g)",
							m, n, i, wf[i], mf[i], vf[i], wr[i], mr[i], vr[i])
					}
					if gf[i] != 0 {
						t.Errorf("%v n=%d: gradient lane %d not cleared: %g", m, n, i, gf[i])
					}
				}
			}
		})
	}
}

// TestAdamStepZeroBF16MatchesStepThenZero is the BF16Both-precision analog.
func TestAdamStepZeroBF16MatchesStepThenZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	p := NewAdamParams(0.01, 0.9, 0.999, 1e-8, 2)
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, n := range fusedLens {
				w0 := bf16.FromSlice(randSlice(rng, n))
				m0 := randSlice(rng, n)
				v0 := randSlice(rng, n)
				for i := range v0 {
					v0[i] = v0[i] * v0[i]
				}
				g0 := randSlice(rng, n)

				wf := append([]bf16.BF16(nil), w0...)
				mf := append([]float32(nil), m0...)
				vf := append([]float32(nil), v0...)
				gf := append([]float32(nil), g0...)
				AdamStepZeroBF16(wf, mf, vf, gf, p)

				wr := append([]bf16.BF16(nil), w0...)
				mr := append([]float32(nil), m0...)
				vr := append([]float32(nil), v0...)
				gr := append([]float32(nil), g0...)
				AdamStepBF16(wr, mr, vr, gr, p)
				Zero(gr)

				for i := 0; i < n; i++ {
					if wf[i] != wr[i] || mf[i] != mr[i] || vf[i] != vr[i] {
						t.Errorf("%v n=%d i=%d: fused BF16 diverged from step-then-zero", m, n, i)
					}
					if gf[i] != 0 {
						t.Errorf("%v n=%d: BF16 gradient lane %d not cleared: %g", m, n, i, gf[i])
					}
				}
			}
		})
	}
}

func TestAdamStepZeroMismatchPanics(t *testing.T) {
	p := NewAdamParams(0.1, 0.9, 0.999, 1e-8, 1)
	for name, f := range map[string]func(){
		"AdamStepZero": func() {
			AdamStepZero(make([]float32, 2), make([]float32, 1), make([]float32, 2), make([]float32, 2), p)
		},
		"AdamStepZeroBF16": func() {
			AdamStepZeroBF16(make([]bf16.BF16, 2), make([]float32, 1), make([]float32, 2), make([]float32, 2), p)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestKernelTableResolvesMode checks that Active and ForMode return tables
// whose entries match the mode-specific implementations, and that SetMode
// still flips which table Active returns (the Table-4 ablation contract).
func TestKernelTableResolvesMode(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			ks := Active()
			if ks.Mode != m {
				t.Fatalf("Active().Mode = %v under SetMode(%v)", ks.Mode, m)
			}
			if ks != ForMode(m) {
				t.Errorf("Active() and ForMode(%v) disagree", m)
			}
			if got := ks.Dot(a, b); got != 32 {
				t.Errorf("%v table Dot = %g, want 32", m, got)
			}
		})
	}
	// Both tables must produce equivalent results on every shared entry.
	rng := rand.New(rand.NewPCG(39, 40))
	x := randSlice(rng, 37)
	y := randSlice(rng, 37)
	vec, sca := ForMode(Vector), ForMode(Scalar)
	if !approxEqual(float64(vec.Dot(x, y)), float64(sca.Dot(x, y)), 1e-4) {
		t.Error("table Dot entries disagree between modes")
	}
	if !approxEqual(float64(vec.Sum(x)), float64(sca.Sum(x)), 1e-4) {
		t.Error("table Sum entries disagree between modes")
	}
	if vec.ArgMax(x) != sca.ArgMax(x) {
		t.Error("table ArgMax entries disagree between modes")
	}
}

// FuzzDotManyBias cross-checks the fused forward kernel against per-element
// scalar math on fuzz-generated rows, ids and activations.
func FuzzDotManyBias(f *testing.F) {
	f.Add(uint64(1), 8, 5, 3)
	f.Add(uint64(42), 0, 1, 1)
	f.Add(uint64(7), 17, 4, 9)
	f.Fuzz(func(t *testing.T, seed uint64, dim, nRows, nIDs int) {
		if dim < 0 || dim > 512 || nRows < 1 || nRows > 64 || nIDs < 0 || nIDs > 256 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		rows := randRows(rng, nRows, dim)
		bias := randSlice(rng, nRows)
		h := randSlice(rng, dim)
		ids := make([]int32, nIDs)
		for i := range ids {
			ids[i] = int32(rng.IntN(nRows))
		}
		out := make([]float32, nIDs)
		for _, m := range []Mode{Vector, Scalar} {
			withModeQuick(m, func() {
				DotManyBias(rows, bias, ids, h, out)
			})
			for k, id := range ids {
				var want float64
				for i := 0; i < dim; i++ {
					want += float64(rows[id][i]) * float64(h[i])
				}
				want += float64(bias[id])
				if math.Abs(float64(out[k])-want) > 1e-2*math.Max(1, math.Abs(want)) {
					t.Fatalf("%v: out[%d]=%g, float64 reference %g", m, k, out[k], want)
				}
			}
		}
	})
}
