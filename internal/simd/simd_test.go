package simd

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/slide-cpu/slide/internal/bf16"
)

// withMode runs f under the given kernel mode, restoring the previous mode.
func withMode(t *testing.T, m Mode, f func()) {
	t.Helper()
	prev := CurrentMode()
	SetMode(m)
	defer SetMode(prev)
	f()
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func approxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

func TestModeSwitch(t *testing.T) {
	prev := CurrentMode()
	defer SetMode(prev)
	SetMode(Scalar)
	if CurrentMode() != Scalar {
		t.Fatal("SetMode(Scalar) not observed")
	}
	SetMode(Vector)
	if CurrentMode() != Vector {
		t.Fatal("SetMode(Vector) not observed")
	}
	if Vector.String() != "vector" || Scalar.String() != "scalar" || Mode(99).String() != "unknown" {
		t.Error("Mode.String values wrong")
	}
}

func TestDotVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{0, 1, 3, 15, 16, 17, 31, 32, 100, 1024, 1000} {
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		v := float64(DotVec(a, b))
		s := float64(DotScalar(a, b))
		if !approxEqual(v, s, 1e-4) {
			t.Errorf("n=%d: DotVec=%g DotScalar=%g", n, v, s)
		}
	}
}

func TestDotDispatch(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	want := float32(32)
	withMode(t, Vector, func() {
		if got := Dot(a, b); got != want {
			t.Errorf("vector Dot = %g, want %g", got, want)
		}
	})
	withMode(t, Scalar, func() {
		if got := Dot(a, b); got != want {
			t.Errorf("scalar Dot = %g, want %g", got, want)
		}
	})
}

func TestDotLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":       func() { Dot(make([]float32, 2), make([]float32, 3)) },
		"DotVec":    func() { DotVec(make([]float32, 2), make([]float32, 3)) },
		"DotScalar": func() { DotScalar(make([]float32, 2), make([]float32, 3)) },
		"Axpy":      func() { Axpy(1, make([]float32, 2), make([]float32, 3)) },
		"Add":       func() { Add(make([]float32, 2), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAxpyVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, n := range []int{0, 1, 15, 16, 17, 33, 128, 129} {
		x := randSlice(rng, n)
		y0 := randSlice(rng, n)
		alpha := float32(rng.NormFloat64())

		yv := append([]float32(nil), y0...)
		AxpyVec(alpha, x, yv)
		ys := append([]float32(nil), y0...)
		AxpyScalar(alpha, x, ys)
		for i := range yv {
			if !approxEqual(float64(yv[i]), float64(ys[i]), 1e-5) {
				t.Errorf("n=%d i=%d: vec=%g scalar=%g", n, i, yv[i], ys[i])
			}
		}
	}
}

func TestPropertyDotEquivalence(t *testing.T) {
	f := func(a, b []float32) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		for i := range a { // tame magnitudes so float reassociation is benign
			a[i] = clamp(a[i])
			b[i] = clamp(b[i])
		}
		return approxEqual(float64(DotVec(a, b)), float64(DotScalar(a, b)), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp(x float32) float32 {
	if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
		return 0
	}
	if x > 100 {
		return 100
	}
	if x < -100 {
		return -100
	}
	return x
}

func TestDot4MatchesFourDots(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, n := range []int{0, 1, 7, 8, 9, 128, 131} {
				a0 := randSlice(rng, n)
				a1 := randSlice(rng, n)
				a2 := randSlice(rng, n)
				a3 := randSlice(rng, n)
				b := randSlice(rng, n)
				s0, s1, s2, s3 := Dot4(a0, a1, a2, a3, b)
				for i, pair := range []struct {
					got  float32
					want float32
				}{
					{s0, DotScalar(a0, b)},
					{s1, DotScalar(a1, b)},
					{s2, DotScalar(a2, b)},
					{s3, DotScalar(a3, b)},
				} {
					if !approxEqual(float64(pair.got), float64(pair.want), 1e-4) {
						t.Errorf("%v n=%d: Dot4[%d]=%g want %g", m, n, i, pair.got, pair.want)
					}
				}
			}
		})
	}
}

func TestDot4MismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot4 length mismatch did not panic")
		}
	}()
	Dot4(make([]float32, 2), make([]float32, 3), make([]float32, 3), make([]float32, 3), make([]float32, 3))
}

func TestPropertyAxpyEquivalence(t *testing.T) {
	f := func(raw []float32, alphaRaw float32) bool {
		n := len(raw) / 2
		x := make([]float32, n)
		y0 := make([]float32, n)
		for i := 0; i < n; i++ {
			x[i] = clamp(raw[i])
			y0[i] = clamp(raw[n+i])
		}
		alpha := clamp(alphaRaw)
		yv := append([]float32(nil), y0...)
		ys := append([]float32(nil), y0...)
		AxpyVec(alpha, x, yv)
		AxpyScalar(alpha, x, ys)
		for i := range yv {
			if !approxEqual(float64(yv[i]), float64(ys[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySumEquivalence(t *testing.T) {
	f := func(raw []float32) bool {
		x := make([]float32, len(raw))
		for i := range raw {
			x[i] = clamp(raw[i])
		}
		var vec, scalar float32
		withModeQuick(Vector, func() { vec = Sum(x) })
		withModeQuick(Scalar, func() { scalar = Sum(x) })
		return approxEqual(float64(vec), float64(scalar), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAdamEquivalence(t *testing.T) {
	p := NewAdamParams(0.01, 0.9, 0.999, 1e-8, 2)
	f := func(raw []float32) bool {
		n := len(raw) / 2
		w0 := make([]float32, n)
		g := make([]float32, n)
		for i := 0; i < n; i++ {
			w0[i] = clamp(raw[i])
			g[i] = clamp(raw[n+i])
		}
		wv := append([]float32(nil), w0...)
		ws := append([]float32(nil), w0...)
		mv, vv := make([]float32, n), make([]float32, n)
		ms, vs := make([]float32, n), make([]float32, n)
		AdamStepVec(wv, mv, vv, g, p)
		AdamStepScalar(ws, ms, vs, g, p)
		for i := range wv {
			if wv[i] != ws[i] { // identical math, element-local: bit-equal
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// withModeQuick flips the kernel mode without a testing.T (quick.Check
// callbacks).
func withModeQuick(m Mode, f func()) {
	prev := CurrentMode()
	SetMode(m)
	defer SetMode(prev)
	f()
}

func TestSumAndScaleAndAdd(t *testing.T) {
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			x := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
			if got := Sum(x); got != 153 {
				t.Errorf("%v Sum = %g, want 153", m, got)
			}
			y := append([]float32(nil), x...)
			Scale(2, y)
			for i := range y {
				if y[i] != 2*x[i] {
					t.Errorf("%v Scale[%d] = %g", m, i, y[i])
				}
			}
			z := append([]float32(nil), x...)
			Add(x, z)
			for i := range z {
				if z[i] != 2*x[i] {
					t.Errorf("%v Add[%d] = %g", m, i, z[i])
				}
			}
		})
	}
}

func TestFillZero(t *testing.T) {
	x := make([]float32, 37)
	Fill(x, 3.5)
	for _, v := range x {
		if v != 3.5 {
			t.Fatal("Fill failed")
		}
	}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		x    []float32
		want int
	}{
		{[]float32{1}, 0},
		{[]float32{1, 3, 2}, 1},
		{[]float32{-5, -2, -9}, 1},
		{[]float32{2, 2, 2}, 0},    // ties -> lowest index
		{[]float32{0, 1, 1, 0}, 1}, // tie inside
		{make([]float32, 64), 0},   // all zero
		{append(make([]float32, 40), 7), 40},
	}
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, c := range cases {
				if got := ArgMax(c.x); got != c.want {
					t.Errorf("%v ArgMax(%v) = %d, want %d", m, c.x, got, c.want)
				}
			}
		})
	}
}

func TestPropertyArgMaxEquivalence(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float32, len(raw))
		for i := range raw {
			x[i] = clamp(raw[i])
		}
		return argMaxVec(x) == argMaxScalar(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArgMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ArgMax(empty) did not panic")
		}
	}()
	ArgMax(nil)
}

func TestMax(t *testing.T) {
	if got := Max([]float32{-3, -1, -2}); got != -1 {
		t.Errorf("Max = %g, want -1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Max(empty) did not panic")
		}
	}()
	Max(nil)
}

// referenceAdam is an independent scalar ADAM implementation used to verify
// both kernel modes.
func referenceAdam(w, m, v, g []float64, lr, b1, b2, eps float64, t int64) {
	bc1 := 1 - math.Pow(b1, float64(t))
	bc2 := 1 - math.Pow(b2, float64(t))
	corr := lr * math.Sqrt(bc2) / bc1
	for i := range w {
		m[i] = b1*m[i] + (1-b1)*g[i]
		v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
		w[i] -= corr * m[i] / (math.Sqrt(v[i]) + eps)
	}
}

func TestAdamStepAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 67 // not a multiple of 16
	w32 := randSlice(rng, n)
	m32 := make([]float32, n)
	v32 := make([]float32, n)

	w64 := make([]float64, n)
	m64 := make([]float64, n)
	v64 := make([]float64, n)
	for i := range w32 {
		w64[i] = float64(w32[i])
	}

	lr, b1, b2, eps := 0.001, 0.9, 0.999, 1e-8
	for step := int64(1); step <= 5; step++ {
		g32 := randSlice(rng, n)
		g64 := make([]float64, n)
		for i := range g32 {
			g64[i] = float64(g32[i])
		}
		p := NewAdamParams(lr, b1, b2, eps, step)
		AdamStepVec(w32, m32, v32, g32, p)
		referenceAdam(w64, m64, v64, g64, lr, b1, b2, eps, step)
	}
	// eps placement differs microscopically between the float32 fused form
	// and the float64 reference; allow a loose bound.
	for i := range w32 {
		if !approxEqual(float64(w32[i]), w64[i], 1e-3) {
			t.Errorf("w[%d] = %g, reference %g", i, w32[i], w64[i])
		}
	}
}

func TestAdamVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	n := 131
	w0 := randSlice(rng, n)
	g := randSlice(rng, n)
	p := NewAdamParams(0.01, 0.9, 0.999, 1e-8, 3)

	wv := append([]float32(nil), w0...)
	mv := make([]float32, n)
	vv := make([]float32, n)
	AdamStepVec(wv, mv, vv, g, p)

	ws := append([]float32(nil), w0...)
	ms := make([]float32, n)
	vs := make([]float32, n)
	AdamStepScalar(ws, ms, vs, g, p)

	for i := range wv {
		if wv[i] != ws[i] || mv[i] != ms[i] || vv[i] != vs[i] {
			t.Errorf("i=%d: vec (%g,%g,%g) scalar (%g,%g,%g)",
				i, wv[i], mv[i], vv[i], ws[i], ms[i], vs[i])
		}
	}
}

func TestAdamStepDispatchAndPanic(t *testing.T) {
	p := NewAdamParams(0.1, 0.9, 0.999, 1e-8, 1)
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			w := []float32{1}
			AdamStep(w, []float32{0}, []float32{0}, []float32{1}, p)
			if w[0] >= 1 {
				t.Errorf("%v AdamStep did not descend: w=%g", m, w[0])
			}
		})
	}
	defer func() {
		if recover() == nil {
			t.Error("AdamStep length mismatch did not panic")
		}
	}()
	AdamStep(make([]float32, 2), make([]float32, 1), make([]float32, 2), make([]float32, 2), p)
}

func TestDotBF16F32(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			for _, n := range []int{0, 1, 16, 17, 100} {
				a := randSlice(rng, n)
				b := randSlice(rng, n)
				ab := bf16.FromSlice(a)
				got := float64(DotBF16F32(ab, b))
				want := float64(DotScalar(bf16.ToSlice(ab), b))
				if !approxEqual(got, want, 1e-4) {
					t.Errorf("%v n=%d: DotBF16F32=%g want %g", m, n, got, want)
				}
			}
		})
	}
}

func TestDotBF16Both(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			n := 53
			a := bf16.FromSlice(randSlice(rng, n))
			b := bf16.FromSlice(randSlice(rng, n))
			got := float64(DotBF16(a, b))
			want := float64(DotScalar(bf16.ToSlice(a), bf16.ToSlice(b)))
			if !approxEqual(got, want, 1e-4) {
				t.Errorf("%v DotBF16=%g want %g", m, got, want)
			}
		})
	}
}

func TestAxpyBF16(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			n := 37
			x := bf16.FromSlice(randSlice(rng, n))
			y := randSlice(rng, n)
			want := append([]float32(nil), y...)
			AxpyScalar(0.5, bf16.ToSlice(x), want)
			AxpyBF16(0.5, x, y)
			for i := range y {
				if !approxEqual(float64(y[i]), float64(want[i]), 1e-5) {
					t.Errorf("%v AxpyBF16[%d]=%g want %g", m, i, y[i], want[i])
				}
			}
		})
	}
}

func TestAdamStepBF16Descends(t *testing.T) {
	n := 24
	w := make([]bf16.BF16, n)
	for i := range w {
		w[i] = bf16.FromFloat32(1)
	}
	m := make([]float32, n)
	v := make([]float32, n)
	g := make([]float32, n)
	for i := range g {
		g[i] = 1 // positive gradient => weights must decrease
	}
	p := NewAdamParams(0.01, 0.9, 0.999, 1e-8, 1)
	AdamStepBF16(w, m, v, g, p)
	for i := range w {
		if w[i].Float32() >= 1 {
			t.Fatalf("w[%d]=%g did not descend", i, w[i].Float32())
		}
	}
}

func TestBF16MismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"DotBF16F32": func() { DotBF16F32(make([]bf16.BF16, 1), make([]float32, 2)) },
		"DotBF16":    func() { DotBF16(make([]bf16.BF16, 1), make([]bf16.BF16, 2)) },
		"AxpyBF16":   func() { AxpyBF16(1, make([]bf16.BF16, 1), make([]float32, 2)) },
		"AdamBF16": func() {
			AdamStepBF16(make([]bf16.BF16, 1), make([]float32, 2), make([]float32, 1), make([]float32, 1), AdamParams{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSquaredNorm(t *testing.T) {
	for _, m := range []Mode{Vector, Scalar} {
		withMode(t, m, func() {
			x := []float32{3, 4}
			if got := SquaredNorm(x); got != 25 {
				t.Errorf("%v SquaredNorm = %g, want 25", m, got)
			}
		})
	}
}

func TestScaleAccumIsAxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	ScaleAccum(2, x, y)
	want := []float32{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("ScaleAccum[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}
