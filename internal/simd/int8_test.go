package simd

import (
	"math/rand"
	"testing"
)

// refDotU8S8 is the plain-loop ground truth the tiers must match EXACTLY —
// integer accumulation has a single correct answer, unlike the float kernels'
// tolerance-based equivalence.
func refDotU8S8(a []uint8, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func refDotU8S4(a []uint8, b4 []uint8) int32 {
	var s int32
	for i := range a {
		v := b4[i>>1]
		if i&1 == 0 {
			s += int32(a[i]) * int32(int8(v<<4)>>4)
		} else {
			s += int32(a[i]) * int32(int8(v)>>4)
		}
	}
	return s
}

// quantInputs builds operands over the full contract range: activations in
// [0,127], weights in [-127,127].
func quantInputs(rng *rand.Rand, n int) ([]uint8, []int8) {
	a := make([]uint8, n)
	b := make([]int8, n)
	for i := range a {
		a[i] = uint8(rng.Intn(128))
		b[i] = int8(rng.Intn(255) - 127)
	}
	return a, b
}

// TestQuantDotU8S8Tiers checks every kernel tier against the reference at
// boundary lengths around the 16-byte AVX2 and 64/128-byte VNNI block sizes,
// plus unaligned sub-slices (the packed rows in quant.RowQ are offsets into
// one contiguous backing array, so kernels see arbitrary base alignment).
func TestQuantDotU8S8Tiers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 2, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65,
		127, 128, 129, 255, 256, 1000, 4096}
	for _, mode := range []Mode{Scalar, Vector, AVX2, AVX512} {
		k := ForMode(mode)
		t.Run(mode.String(), func(t *testing.T) {
			for _, n := range lengths {
				for off := 0; off < 3; off++ {
					full, fullB := quantInputs(rng, n+off)
					a, b := full[off:], fullB[off:]
					want := refDotU8S8(a, b)
					if got := k.DotU8S8(a, b); got != want {
						t.Fatalf("n=%d off=%d: DotU8S8 = %d, want %d (exact)",
							n, off, got, want)
					}
				}
			}
		})
	}
}

func TestQuantDotU8S4Tiers(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lengths := []int{0, 1, 2, 3, 15, 16, 17, 32, 33, 127, 128, 129, 1001}
	for _, mode := range []Mode{Scalar, Vector, AVX2, AVX512} {
		k := ForMode(mode)
		t.Run(mode.String(), func(t *testing.T) {
			for _, n := range lengths {
				a := make([]uint8, n)
				b4 := make([]uint8, (n+1)/2)
				for i := range a {
					a[i] = uint8(rng.Intn(128))
				}
				for i := range b4 {
					b4[i] = uint8(rng.Intn(256))
				}
				// Odd n: the padding nibble must be ignored, so poison it.
				if n&1 == 1 {
					b4[len(b4)-1] |= 0xF0
				}
				want := refDotU8S4(a, b4)
				if got := k.DotU8S4(a, b4); got != want {
					t.Fatalf("n=%d: DotU8S4 = %d, want %d (exact)", n, got, want)
				}
			}
		})
	}
}

// TestQuantDotExtremes drives the worst-case magnitudes (all 127 x ±127) so
// any saturating instruction on the path would be caught: 4096*127*127 is
// well past the i16 range a saturating pairwise add would clip to.
func TestQuantDotExtremes(t *testing.T) {
	for _, n := range []int{16, 64, 128, 4096} {
		a := make([]uint8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = 127
			if i%2 == 0 {
				b[i] = 127
			} else {
				b[i] = -127
			}
		}
		want := refDotU8S8(a, b)
		for _, mode := range []Mode{Scalar, Vector, AVX2, AVX512} {
			if got := ForMode(mode).DotU8S8(a, b); got != want {
				t.Errorf("mode=%v n=%d: DotU8S8 = %d, want %d", mode, n, got, want)
			}
		}
		// All-positive: maximal accumulator growth.
		for i := range b {
			b[i] = 127
		}
		want = int32(n) * 127 * 127
		for _, mode := range []Mode{Scalar, Vector, AVX2, AVX512} {
			if got := ForMode(mode).DotU8S8(a, b); got != want {
				t.Errorf("mode=%v n=%d all-pos: DotU8S8 = %d, want %d", mode, n, got, want)
			}
		}
	}
}

func TestQuantDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotU8S8 with mismatched lengths did not panic")
		}
	}()
	DotU8S8(make([]uint8, 4), make([]int8, 5))
}

func TestQuantDotU8S4LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotU8S4 with wrong packed length did not panic")
		}
	}()
	DotU8S4(make([]uint8, 4), make([]uint8, 3))
}

func BenchmarkDotU8S8(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(7))
	a, w := quantInputs(rng, n)
	for _, mode := range []Mode{Scalar, Vector, AVX2, AVX512} {
		k := ForMode(mode)
		b.Run(k.Mode.String(), func(b *testing.B) {
			b.SetBytes(2 * n)
			var s int32
			for i := 0; i < b.N; i++ {
				s += k.DotU8S8(a, w)
			}
			sink32i = s
		})
	}
}

var sink32i int32
