//go:build !amd64

package simd

// Non-amd64 builds have no assembly tiers: the portable Vector kernels are
// the vectorized reference everywhere. clamp downgrades AVX512/AVX2
// requests to Vector, and the avx tables keep their default (a copy of the
// portable table) from kernels.go.
const (
	haveAVX2     = false
	haveAVX512   = false
	haveAVX512BF = false
)
