//go:build amd64

package simd

import (
	"os"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/cpufeat"
)

// Host capability flags, probed once. clamp/Supported read these; the init
// below swaps the assembly tables in when the silicon can run them.
// SLIDE_NO_VNNI=1 forces the AVX-512 table onto the AVX2 integer kernel —
// the CI knob for exercising the VNNI-absent fallback on VNNI hardware.
var (
	feat         = cpufeat.Detect()
	haveAVX2     = feat.HasAVX2Tier()
	haveAVX512   = feat.HasAVX512Tier()
	haveAVX512BF = haveAVX512 && feat.AVX512BF16
	haveVNNI     = feat.HasVNNITier() && os.Getenv("SLIDE_NO_VNNI") == ""
)

func init() {
	if haveAVX2 {
		avx2Kernels = Kernels{
			Mode:       AVX2,
			Dot:        dotAVX2,
			Axpy:       axpyAVX2,
			ScaleAccum: axpyAVX2,
			Add:        addAVX2,
			Scale:      scaleAVX2,
			Sum:        sumAVX2,
			Max:        maxAVX2,
			ArgMax:     argMaxVec, // index bookkeeping stays portable (see DESIGN.md)
			AdamStep:   adamAVX2,

			DotManyBias:  dotManyBiasAVX2,
			AxpyTwo:      axpyTwoAVX2,
			AdamStepZero: adamZeroAVX2,

			DotBF16F32:         dotBF16F32AVX2,
			DotBF16:            dotBF16AVX2,
			AxpyBF16:           axpyBF16AVX2,
			AdamStepBF16:       adamStepBF16, // element-local re-rounding: software on every tier
			AdamStepZeroBF16:   adamStepZeroBF16,
			DotManyBiasBF16Act: dotManyBiasBF16ActAVX2,
			DotManyBiasBF16:    dotManyBiasBF16AVX2,

			DotU8S8: dotU8S8AVX2,
			DotU8S4: dotU8S4Go,

			PackBF16:  packBF16Go,
			RoundBF16: roundBF16Go,
		}
	}
	if haveAVX512 {
		avx512Kernels = Kernels{
			Mode:       AVX512,
			Dot:        dotAVX512,
			Axpy:       axpyAVX512,
			ScaleAccum: axpyAVX512,
			Add:        addAVX512,
			Scale:      scaleAVX512,
			Sum:        sumAVX512,
			Max:        maxAVX512,
			ArgMax:     argMaxVec,
			AdamStep:   adamAVX512,

			DotManyBias:  dotManyBiasAVX512,
			AxpyTwo:      axpyTwoAVX512,
			AdamStepZero: adamZeroAVX512,

			DotBF16F32:         dotBF16F32AVX512,
			DotBF16:            dotBF16AVX512,
			AxpyBF16:           axpyBF16AVX512,
			AdamStepBF16:       adamStepBF16,
			AdamStepZeroBF16:   adamStepZeroBF16,
			DotManyBiasBF16Act: dotManyBiasBF16ActAVX512,
			DotManyBiasBF16:    dotManyBiasBF16AVX512,

			// The integer dot rides the AVX2 widening kernel unless the
			// silicon has VNNI (see below); either way the result is the
			// identical int32 — exact math, so the swap is pure throughput.
			DotU8S8: dotU8S8AVX2,
			DotU8S4: dotU8S4Go,

			PackBF16:  packBF16Go,
			RoundBF16: roundBF16Go,
		}
		if haveVNNI {
			avx512Kernels.DotU8S8 = dotU8S8VNNI
		}
		if haveAVX512BF {
			// Hardware VCVTNEPS2BF16. Divergence from the software
			// converter: subnormal float32 inputs are treated as zero
			// (the instruction is DAZ); normal, zero, Inf and NaN inputs
			// convert identically (see DESIGN.md "Native kernel backend").
			avx512Kernels.PackBF16 = packBF16AVX512
			avx512Kernels.RoundBF16 = roundBF16AVX512
		}
	}
}

// --- Assembly externs -------------------------------------------------------
//
// The *AVX2Asm kernels require n > 0 and n%8 == 0 (Go wrappers run the
// remainder with scalar code that matches the portable tier bit for bit).
// The *AVX512Asm kernels accept any n >= 0 (n > 0 for max) and finish with
// masked loads/stores.

//go:noescape
func dotAVX2Asm(a, b *float32, n int64) float32

//go:noescape
func dotAVX512Asm(a, b *float32, n int64) float32

//go:noescape
func axpyAVX2Asm(alpha float32, x, y *float32, n int64)

//go:noescape
func axpyAVX512Asm(alpha float32, x, y *float32, n int64)

//go:noescape
func axpyTwoAVX2Asm(gz float32, h, grad, w, dh *float32, n int64)

//go:noescape
func axpyTwoAVX512Asm(gz float32, h, grad, w, dh *float32, n int64)

//go:noescape
func scaleAVX2Asm(alpha float32, x *float32, n int64)

//go:noescape
func scaleAVX512Asm(alpha float32, x *float32, n int64)

//go:noescape
func addAVX2Asm(x, y *float32, n int64)

//go:noescape
func addAVX512Asm(x, y *float32, n int64)

//go:noescape
func sumAVX2Asm(x *float32, n int64) float32

//go:noescape
func sumAVX512Asm(x *float32, n int64) float32

//go:noescape
func maxAVX2Asm(x *float32, n int64) float32

//go:noescape
func maxAVX512Asm(x *float32, n int64) float32

//go:noescape
func adamAVX2Asm(w, m, v, grad *float32, n int64, beta1, beta2, omb1, omb2, eps, corr float32, zeroG int64)

//go:noescape
func adamAVX512Asm(w, m, v, grad *float32, n int64, beta1, beta2, omb1, omb2, eps, corr float32, zeroG int64)

//go:noescape
func dotBF16F32AVX2Asm(a *bf16.BF16, b *float32, n int64) float32

//go:noescape
func dotBF16F32AVX512Asm(a *bf16.BF16, b *float32, n int64) float32

//go:noescape
func dotBF16AVX2Asm(a, b *bf16.BF16, n int64) float32

//go:noescape
func dotBF16AVX512Asm(a, b *bf16.BF16, n int64) float32

//go:noescape
func axpyBF16AVX2Asm(alpha float32, x *bf16.BF16, y *float32, n int64)

//go:noescape
func axpyBF16AVX512Asm(alpha float32, x *bf16.BF16, y *float32, n int64)

//go:noescape
func dotU8S8AVX2Asm(a *uint8, b *int8, n int64) int32

//go:noescape
func dotU8S8VNNIAsm(a *uint8, b *int8, n int64) int32

//go:noescape
func packBF16AVX512Asm(dst *bf16.BF16, src *float32, n int64)

//go:noescape
func roundBF16AVX512Asm(x *float32, n int64)

// --- AVX2 wrappers ----------------------------------------------------------
//
// Tail elements (n%8) run in Go with the exact expression shapes of the
// scalar reference, so tails are bit-identical to the portable tier; only
// the vector body's FMA and reduction order can differ (dot/sum kernels).

func dotAVX2(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	nv := n &^ 7
	var s float32
	if nv > 0 {
		s = dotAVX2Asm(&a[0], &b[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

func axpyAVX2(alpha float32, x, y []float32) {
	n := len(x)
	y = y[:n]
	nv := n &^ 7
	if nv > 0 {
		axpyAVX2Asm(alpha, &x[0], &y[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func axpyTwoAVX2(gz float32, h, grad, w, dh []float32) {
	n := len(h)
	grad = grad[:n]
	w = w[:n]
	dh = dh[:n]
	nv := n &^ 7
	if nv > 0 {
		axpyTwoAVX2Asm(gz, &h[0], &grad[0], &w[0], &dh[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		grad[i] += gz * h[i]
		dh[i] += gz * w[i]
	}
}

func scaleAVX2(alpha float32, x []float32) {
	n := len(x)
	nv := n &^ 7
	if nv > 0 {
		scaleAVX2Asm(alpha, &x[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		x[i] *= alpha
	}
}

func addAVX2(x, y []float32) {
	n := len(x)
	y = y[:n]
	nv := n &^ 7
	if nv > 0 {
		addAVX2Asm(&x[0], &y[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		y[i] += x[i]
	}
}

func sumAVX2(x []float32) float32 {
	n := len(x)
	nv := n &^ 7
	var s float32
	if nv > 0 {
		s = sumAVX2Asm(&x[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		s += x[i]
	}
	return s
}

func maxAVX2(x []float32) float32 {
	if len(x) == 0 {
		panic("simd: Max of empty slice")
	}
	nv := len(x) &^ 7
	if nv == 0 {
		return Max(x)
	}
	m := maxAVX2Asm(&x[0], int64(nv))
	for _, v := range x[nv:] {
		if v > m {
			m = v
		}
	}
	return m
}

func adamAVX2(w, m, v, g []float32, p AdamParams)     { adamAVX2Impl(w, m, v, g, p, 0) }
func adamZeroAVX2(w, m, v, g []float32, p AdamParams) { adamAVX2Impl(w, m, v, g, p, 1) }

func adamAVX2Impl(w, m, v, g []float32, p AdamParams, zeroG int64) {
	n := len(w)
	m = m[:n]
	v = v[:n]
	g = g[:n]
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	nv := n &^ 7
	if nv > 0 {
		adamAVX2Asm(&w[0], &m[0], &v[0], &g[0], int64(nv),
			p.Beta1, p.Beta2, omb1, omb2, p.Eps, p.CorrLR, zeroG)
	}
	for i := nv; i < n; i++ {
		gk := g[i]
		if zeroG != 0 {
			g[i] = 0
		}
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
	}
}

func dotManyBiasAVX2(rows [][]float32, bias []float32, ids []int32, h, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(h) {
			panic("simd: DotManyBias row length mismatch")
		}
		out[k] = dotAVX2(r, h) + bias[id]
	}
}

// dotU8S8AVX2 and dotU8S8VNNI run the vector body on the aligned prefix and
// finish with a Go tail. Integer accumulation is exact, so both are
// bit-identical to the scalar reference regardless of blocking.

func dotU8S8AVX2(a []uint8, b []int8) int32 {
	n := len(a)
	b = b[:n]
	nv := n &^ 15
	var s int32
	if nv > 0 {
		s = dotU8S8AVX2Asm(&a[0], &b[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func dotU8S8VNNI(a []uint8, b []int8) int32 {
	n := len(a)
	b = b[:n]
	nv := n &^ 63
	var s int32
	if nv > 0 {
		s = dotU8S8VNNIAsm(&a[0], &b[0], int64(nv))
	}
	// Sub-64-byte remainder: reuse the AVX2 kernel (VNNI implies AVX2).
	if n > nv {
		s += dotU8S8AVX2(a[nv:], b[nv:])
	}
	return s
}

func dotBF16F32AVX2(a []bf16.BF16, b []float32) float32 {
	n := len(a)
	b = b[:n]
	nv := n &^ 7
	var s float32
	if nv > 0 {
		s = dotBF16F32AVX2Asm(&a[0], &b[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		s += a[i].Float32() * b[i]
	}
	return s
}

func dotBF16AVX2(a, b []bf16.BF16) float32 {
	n := len(a)
	b = b[:n]
	nv := n &^ 7
	var s float32
	if nv > 0 {
		s = dotBF16AVX2Asm(&a[0], &b[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		s += a[i].Float32() * b[i].Float32()
	}
	return s
}

func axpyBF16AVX2(alpha float32, x []bf16.BF16, y []float32) {
	n := len(x)
	y = y[:n]
	nv := n &^ 7
	if nv > 0 {
		axpyBF16AVX2Asm(alpha, &x[0], &y[0], int64(nv))
	}
	for i := nv; i < n; i++ {
		y[i] += alpha * x[i].Float32()
	}
}

func dotManyBiasBF16ActAVX2(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16Act row length mismatch")
		}
		out[k] = dotBF16F32AVX2(hBF, r) + bias[id]
	}
}

func dotManyBiasBF16AVX2(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16 row length mismatch")
		}
		out[k] = dotBF16AVX2(r, hBF) + bias[id]
	}
}

// --- AVX512 wrappers --------------------------------------------------------
//
// Tails are masked inside the assembly; wrappers only guard the empty slice
// (no base pointer to take) and enforce the length contracts.

func dotAVX512(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotAVX512Asm(&a[0], &b[0], int64(n))
}

func axpyAVX512(alpha float32, x, y []float32) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	axpyAVX512Asm(alpha, &x[0], &y[0], int64(n))
}

func axpyTwoAVX512(gz float32, h, grad, w, dh []float32) {
	n := len(h)
	if n == 0 {
		return
	}
	grad = grad[:n]
	w = w[:n]
	dh = dh[:n]
	axpyTwoAVX512Asm(gz, &h[0], &grad[0], &w[0], &dh[0], int64(n))
}

func scaleAVX512(alpha float32, x []float32) {
	if len(x) == 0 {
		return
	}
	scaleAVX512Asm(alpha, &x[0], int64(len(x)))
}

func addAVX512(x, y []float32) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	addAVX512Asm(&x[0], &y[0], int64(n))
}

func sumAVX512(x []float32) float32 {
	if len(x) == 0 {
		return 0
	}
	return sumAVX512Asm(&x[0], int64(len(x)))
}

func maxAVX512(x []float32) float32 {
	if len(x) == 0 {
		panic("simd: Max of empty slice")
	}
	return maxAVX512Asm(&x[0], int64(len(x)))
}

func adamAVX512(w, m, v, g []float32, p AdamParams)     { adamAVX512Impl(w, m, v, g, p, 0) }
func adamZeroAVX512(w, m, v, g []float32, p AdamParams) { adamAVX512Impl(w, m, v, g, p, 1) }

func adamAVX512Impl(w, m, v, g []float32, p AdamParams, zeroG int64) {
	n := len(w)
	if n == 0 {
		return
	}
	m = m[:n]
	v = v[:n]
	g = g[:n]
	adamAVX512Asm(&w[0], &m[0], &v[0], &g[0], int64(n),
		p.Beta1, p.Beta2, 1-p.Beta1, 1-p.Beta2, p.Eps, p.CorrLR, zeroG)
}

func dotManyBiasAVX512(rows [][]float32, bias []float32, ids []int32, h, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(h) {
			panic("simd: DotManyBias row length mismatch")
		}
		out[k] = dotAVX512(r, h) + bias[id]
	}
}

func dotBF16F32AVX512(a []bf16.BF16, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotBF16F32AVX512Asm(&a[0], &b[0], int64(n))
}

func dotBF16AVX512(a, b []bf16.BF16) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n]
	return dotBF16AVX512Asm(&a[0], &b[0], int64(n))
}

func axpyBF16AVX512(alpha float32, x []bf16.BF16, y []float32) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	axpyBF16AVX512Asm(alpha, &x[0], &y[0], int64(n))
}

func dotManyBiasBF16ActAVX512(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16Act row length mismatch")
		}
		out[k] = dotBF16F32AVX512(hBF, r) + bias[id]
	}
}

func dotManyBiasBF16AVX512(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16 row length mismatch")
		}
		out[k] = dotBF16AVX512(r, hBF) + bias[id]
	}
}

func packBF16AVX512(dst []bf16.BF16, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: Convert length mismatch")
	}
	if len(src) == 0 {
		return
	}
	packBF16AVX512Asm(&dst[0], &src[0], int64(len(src)))
}

func roundBF16AVX512(x []float32) {
	if len(x) == 0 {
		return
	}
	roundBF16AVX512Asm(&x[0], int64(len(x)))
}
