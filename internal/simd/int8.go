package simd

// Integer dot kernels for the quantized serving tier (internal/quant).
//
// The contract is stricter than the float kernels': every tier must produce
// the IDENTICAL int32, not a tolerance-equal one. That is achievable because
// the accumulation is exact integer math (associativity holds), provided no
// intermediate saturates. The operand ranges guarantee it:
//
//   - a holds quantized activations in [0, 127] (quant.RowQ clamps to u7
//     precisely so the AVX2 VPMADDWD/VPMADDUBSW family cannot saturate:
//     a pairwise sum is at most 2*127*127 = 32258 < 32767), and
//   - b holds symmetric int8 weights in [-127, 127].
//
// A full dot over 2^28 elements (maxViewDim) peaks at 2^28 * 127 * 127 ≈
// 2^42, which overflows int32 in theory; in practice In is the hidden width
// (tens to a few thousand), bounded far below the 2^31/16129 ≈ 133k element
// overflow horizon. quant.MaxDotLen enforces the bound at packing time.

// DotU8S8 returns the integer inner product of unsigned-byte activations a
// and signed-byte weights b: sum(int32(a[i]) * int32(b[i]).
// It panics if len(a) != len(b).
func DotU8S8(a []uint8, b []int8) int32 {
	if len(a) != len(b) {
		panic("simd: DotU8S8 length mismatch")
	}
	return Active().DotU8S8(a, b)
}

// DotU8S8Scalar is the naive reference implementation, exported for the
// per-tier equivalence tests.
func DotU8S8Scalar(a []uint8, b []int8) int32 {
	if len(a) != len(b) {
		panic("simd: DotU8S8Scalar length mismatch")
	}
	return dotU8S8Scalar(a, b)
}

func dotU8S8Scalar(a []uint8, b []int8) int32 {
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// dotU8S8Vec is the unrolled portable implementation. Integer accumulation
// is exact, so the 4-chain unroll is bit-identical to the scalar loop — the
// unroll exists purely for throughput on non-amd64 builds.
func dotU8S8Vec(a []uint8, b []int8) int32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+Width <= n; i += Width {
		x := a[i : i+Width : i+Width]
		y := b[i : i+Width : i+Width]
		s0 += int32(x[0])*int32(y[0]) + int32(x[1])*int32(y[1]) +
			int32(x[2])*int32(y[2]) + int32(x[3])*int32(y[3])
		s1 += int32(x[4])*int32(y[4]) + int32(x[5])*int32(y[5]) +
			int32(x[6])*int32(y[6]) + int32(x[7])*int32(y[7])
		s2 += int32(x[8])*int32(y[8]) + int32(x[9])*int32(y[9]) +
			int32(x[10])*int32(y[10]) + int32(x[11])*int32(y[11])
		s3 += int32(x[12])*int32(y[12]) + int32(x[13])*int32(y[13]) +
			int32(x[14])*int32(y[14]) + int32(x[15])*int32(y[15])
	}
	for ; i < n; i++ {
		s0 += int32(a[i]) * int32(b[i])
	}
	return s0 + s1 + s2 + s3
}

// DotU8S4 returns the integer inner product of unsigned-byte activations a
// and nibble-packed int4 weights b4: element 2i lives in the low nibble of
// b4[i], element 2i+1 in the high nibble, each a two's-complement int4.
// len(b4) must be (len(a)+1)/2; with odd len(a) the final high nibble is
// padding and ignored. Experimental: Go-only on every tier (the 2x density
// is a memory-footprint play; unpacking in SIMD is future work).
func DotU8S4(a []uint8, b4 []uint8) int32 {
	if len(b4) != (len(a)+1)/2 {
		panic("simd: DotU8S4 packed length mismatch")
	}
	return Active().DotU8S4(a, b4)
}

// dotU8S4Go serves every tier. The nibble decode (int8(v<<4)>>4) is exact
// two's-complement sign extension; accumulation order is irrelevant for the
// exact integer sum.
func dotU8S4Go(a []uint8, b4 []uint8) int32 {
	var s int32
	n := len(a) &^ 1
	for i := 0; i < n; i += 2 {
		v := b4[i>>1]
		s += int32(a[i]) * int32(int8(v<<4)>>4)
		s += int32(a[i+1]) * int32(int8(v)>>4)
	}
	if len(a)&1 != 0 {
		v := b4[len(b4)-1]
		s += int32(a[len(a)-1]) * int32(int8(v<<4)>>4)
	}
	return s
}
