package simd

// This file holds the fused batch kernels: single-pass combinations of the
// primitive kernels that cut per-row call overhead and memory traffic in the
// training hot path. Each one exists because the per-row form pays a cost the
// paper's intrinsics code never does — a dispatch per dot product
// (DotManyBias), two walks over the same cache lines in the backward pass
// (AxpyTwo), or two passes over every touched gradient row in the optimizer
// (AdamStepZero). The exported wrappers dispatch on the package mode for
// standalone use; the hot path reaches the mode-resolved implementations
// through the Kernels table (see kernels.go) so the atomic mode load happens
// once per batch, not once per row.

// DotManyBias fills out[k] = rows[ids[k]]·h + bias[ids[k]] for every id in
// ids — the whole Algorithm 1 forward pass over one active set in a single
// call. Compared with one Dot call per active row it amortizes the dispatch,
// the wrapper-level length panic checks, and the bias gather. Every
// referenced row must have len(h) elements; out must have at least len(ids).
func DotManyBias(rows [][]float32, bias []float32, ids []int32, h, out []float32) {
	if len(out) < len(ids) {
		panic("simd: DotManyBias output buffer too short")
	}
	Active().DotManyBias(rows, bias, ids, h, out)
}

func dotManyBiasVec(rows [][]float32, bias []float32, ids []int32, h, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(h) {
			panic("simd: DotManyBias row length mismatch")
		}
		out[k] = dotVec(r, h) + bias[id]
	}
}

func dotManyBiasScalar(rows [][]float32, bias []float32, ids []int32, h, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(h) {
			panic("simd: DotManyBias row length mismatch")
		}
		out[k] = dotScalar(r, h) + bias[id]
	}
}

// AxpyTwo fuses the two axpys of the Algorithm 1 backward pass into one
// walk: grad += gz*h (the weight-gradient accumulation) and dh += gz*w (the
// input-gradient accumulation) share loop control and the broadcast of gz.
// All four slices must have equal length. Aliasing between (h, grad) and
// (w, dh) pairs is not supported. Dispatches to the active tier's winning
// walk shape (fused in assembly, two independent walks in the Go tiers);
// both shapes are bit-identical.
func AxpyTwo(gz float32, h, grad, w, dh []float32) {
	n := len(h)
	if len(grad) != n || len(w) != n || len(dh) != n {
		panic("simd: AxpyTwo length mismatch")
	}
	Active().AxpyTwo(gz, h, grad, w, dh)
}

// AxpyTwoFused always runs the genuinely fused single-walk implementation
// for the active mode, even on the Go tiers where the dispatch tables pick
// the faster two-walk shape. It exists so BenchmarkKernelAxpyTwo keeps
// measuring the real fusion A/B on every tier — the documented result that
// the fused walk loses ~20% under the Go compiler and wins ~1.6x in
// assembly. Hot paths use Kernels.AxpyTwo, never this.
func AxpyTwoFused(gz float32, h, grad, w, dh []float32) {
	n := len(h)
	if len(grad) != n || len(w) != n || len(dh) != n {
		panic("simd: AxpyTwoFused length mismatch")
	}
	AxpyTwoFusedKernel()(gz, h, grad, w, dh)
}

// AxpyTwoFusedKernel resolves the genuinely fused implementation for the
// active mode once, so benchmarks can hoist the dispatch out of the timed
// loop (the two-axpy comparison side uses a pre-resolved table the same
// way — the A/B must time the walk shapes, not the dispatch).
func AxpyTwoFusedKernel() func(gz float32, h, grad, w, dh []float32) {
	switch CurrentMode() {
	case Scalar:
		return axpyTwoScalar
	case AVX2, AVX512:
		// The assembly tables already hold the fused loop.
		return Active().AxpyTwo
	default:
		return axpyTwoVec
	}
}

func axpyTwoVec(gz float32, h, grad, w, dh []float32) {
	n := len(h)
	grad = grad[:n]
	w = w[:n]
	dh = dh[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		hh := h[i : i+Width : i+Width]
		gg := grad[i : i+Width : i+Width]
		ww := w[i : i+Width : i+Width]
		dd := dh[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			gg[k] += gz * hh[k]
			dd[k] += gz * ww[k]
		}
	}
	for ; i < n; i++ {
		grad[i] += gz * h[i]
		dh[i] += gz * w[i]
	}
}

func axpyTwoScalar(gz float32, h, grad, w, dh []float32) {
	for i := range h {
		grad[i] += gz * h[i]
		dh[i] += gz * w[i]
	}
}

// axpyTwoUnfusedVec and axpyTwoUnfusedScalar implement the AxpyTwo contract
// as two independent axpy walks. Under the Go compiler the single fused walk
// (axpyTwoVec) is ~20% SLOWER than two independent axpys — the four live
// slice pointers defeat the scheduler (BenchmarkKernelAxpyTwo, DESIGN.md
// "Known divergences") — so the Go-tier dispatch tables point AxpyTwo here,
// while the assembly tiers use the genuinely fused loop, which measures
// ~1.6x FASTER than two asm axpys (one load of gz's broadcast and one loop
// control per block instead of two full passes). Both walk orders produce
// bit-identical results because the slice pairs never alias.
func axpyTwoUnfusedVec(gz float32, h, grad, w, dh []float32) {
	axpyVec(gz, h, grad)
	axpyVec(gz, w, dh)
}

func axpyTwoUnfusedScalar(gz float32, h, grad, w, dh []float32) {
	axpyScalar(gz, h, grad)
	axpyScalar(gz, w, dh)
}

// AdamStepZero is AdamStep fused with the gradient clear: each gradient lane
// is consumed and zeroed in the same pass, so a touched row is walked once
// per batch instead of twice (AdamStep then Zero) — halving the traffic over
// the gradient row and saving one full pass over (w, m, v) re-fetches when
// the row has fallen out of cache between the two walks.
func AdamStepZero(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStepZero length mismatch")
	}
	Active().AdamStepZero(w, m, v, g, p)
}

func adamZeroVec(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	m = m[:n]
	v = v[:n]
	g = g[:n]
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	i := 0
	for ; i+Width <= n; i += Width {
		ww := w[i : i+Width : i+Width]
		mm := m[i : i+Width : i+Width]
		vv := v[i : i+Width : i+Width]
		gg := g[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			gk := gg[k]
			gg[k] = 0
			mk := p.Beta1*mm[k] + omb1*gk
			vk := p.Beta2*vv[k] + omb2*gk*gk
			mm[k] = mk
			vv[k] = vk
			ww[k] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
		}
	}
	for ; i < n; i++ {
		gk := g[i]
		g[i] = 0
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
	}
}

func adamZeroScalar(w, m, v, g []float32, p AdamParams) {
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	for i := range w {
		gk := g[i]
		g[i] = 0
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
	}
}
