//go:build amd64

#include "textflag.h"

// AVX2+FMA kernel tier: 8 float32 lanes per ymm register.
//
// Contract shared by every function in this file: n > 0 and n%8 == 0. The
// Go wrappers (dispatch_amd64.go) run remainder elements with scalar code
// matching the portable tier bit for bit. Elementwise kernels (axpy, adam,
// scale, add) use separate VMULPS/VADDPS — not FMA — so each lane performs
// the same two-rounding arithmetic as the Go reference and stays
// bit-identical to it; FMA is reserved for the dot/sum reductions where
// accumulation order already differs (see DESIGN.md "Native kernel
// backend").

// func dotAVX2Asm(a, b *float32, n int64) float32
TEXT ·dotAVX2Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dot2_blk32:
	CMPQ DX, $32
	JLT  dot2_blk8
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, DX
	JMP  dot2_blk32

dot2_blk8:
	TESTQ DX, DX
	JE    dot2_reduce
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, DX
	JMP  dot2_blk8

dot2_reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyAVX2Asm(alpha float32, x, y *float32, n int64)
// y[i] += alpha * x[i], two roundings per lane (mul then add).
TEXT ·axpyAVX2Asm(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX

axpy2_blk8:
	VMOVUPS (SI), Y1
	VMULPS  Y1, Y0, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, DX
	JNE  axpy2_blk8
	VZEROUPPER
	RET

// func axpyTwoAVX2Asm(gz float32, h, grad, w, dh *float32, n int64)
// grad[i] += gz*h[i]; dh[i] += gz*w[i] — one fused walk.
TEXT ·axpyTwoAVX2Asm(SB), NOSPLIT, $0-48
	VBROADCASTSS gz+0(FP), Y0
	MOVQ h+8(FP), SI
	MOVQ grad+16(FP), DI
	MOVQ w+24(FP), R8
	MOVQ dh+32(FP), R9
	MOVQ n+40(FP), DX

axpytwo2_blk8:
	VMOVUPS (SI), Y1
	VMULPS  Y1, Y0, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	VMOVUPS (R8), Y2
	VMULPS  Y2, Y0, Y2
	VADDPS  (R9), Y2, Y2
	VMOVUPS Y2, (R9)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $8, DX
	JNE  axpytwo2_blk8
	VZEROUPPER
	RET

// func scaleAVX2Asm(alpha float32, x *float32, n int64)
TEXT ·scaleAVX2Asm(SB), NOSPLIT, $0-24
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), DX

scale2_blk8:
	VMOVUPS (SI), Y1
	VMULPS  Y1, Y0, Y1
	VMOVUPS Y1, (SI)
	ADDQ $32, SI
	SUBQ $8, DX
	JNE  scale2_blk8
	VZEROUPPER
	RET

// func addAVX2Asm(x, y *float32, n int64)
// y[i] += x[i]
TEXT ·addAVX2Asm(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), DX

add2_blk8:
	VMOVUPS (SI), Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, DX
	JNE  add2_blk8
	VZEROUPPER
	RET

// func sumAVX2Asm(x *float32, n int64) float32
TEXT ·sumAVX2Asm(SB), NOSPLIT, $0-20
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

sum2_blk16:
	CMPQ DX, $16
	JLT  sum2_blk8
	VADDPS (SI), Y0, Y0
	VADDPS 32(SI), Y1, Y1
	ADDQ $64, SI
	SUBQ $16, DX
	JMP  sum2_blk16

sum2_blk8:
	TESTQ DX, DX
	JE    sum2_reduce
	VADDPS (SI), Y0, Y0
	ADDQ $32, SI
	SUBQ $8, DX
	JMP  sum2_blk8

sum2_reduce:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+16(FP)
	RET

// func maxAVX2Asm(x *float32, n int64) float32
// Lane-wise running maxima, horizontal resolve at the end. NaN handling
// follows VMAXPS (NaN in the newer operand propagates), which differs from
// the portable tier; callers never pass NaNs (see DESIGN.md).
TEXT ·maxAVX2Asm(SB), NOSPLIT, $0-20
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX
	VMOVUPS (SI), Y0
	ADDQ $32, SI
	SUBQ $8, DX

max2_blk8:
	TESTQ DX, DX
	JE    max2_reduce
	VMOVUPS (SI), Y1
	VMAXPS Y1, Y0, Y0
	ADDQ $32, SI
	SUBQ $8, DX
	JMP  max2_blk8

max2_reduce:
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X1, X0, X0
	VSHUFPS $0xEE, X0, X0, X1
	VMAXPS X1, X0, X0
	VMOVSHDUP X0, X1
	VMAXSS X1, X0, X0
	VZEROUPPER
	MOVSS X0, ret+16(FP)
	RET

// func adamAVX2Asm(w, m, v, grad *float32, n int64, beta1, beta2, omb1, omb2, eps, corr float32, zeroG int64)
// One fused ADAM pass (§4.3.1): m' = beta1*m + omb1*g; v' = beta2*v +
// (omb2*g)*g; w -= (corr*m') / (sqrt(v') + eps); optionally g = 0.
// Operation order and rounding match the scalar reference exactly.
TEXT ·adamAVX2Asm(SB), NOSPLIT, $0-72
	MOVQ w+0(FP), R8
	MOVQ m+8(FP), R9
	MOVQ v+16(FP), R10
	MOVQ grad+24(FP), R11
	MOVQ n+32(FP), DX
	VBROADCASTSS beta1+40(FP), Y0
	VBROADCASTSS beta2+44(FP), Y1
	VBROADCASTSS omb1+48(FP), Y2
	VBROADCASTSS omb2+52(FP), Y3
	VBROADCASTSS eps+56(FP), Y4
	VBROADCASTSS corr+60(FP), Y5
	MOVQ zeroG+64(FP), R12
	VXORPS Y6, Y6, Y6

adam2_blk8:
	VMOVUPS (R11), Y7          // g
	VMOVUPS (R9), Y8           // m
	VMULPS  Y8, Y0, Y8         // beta1*m
	VMULPS  Y7, Y2, Y9         // omb1*g
	VADDPS  Y9, Y8, Y8         // m'
	VMOVUPS Y8, (R9)
	VMOVUPS (R10), Y10         // v
	VMULPS  Y10, Y1, Y10       // beta2*v
	VMULPS  Y7, Y3, Y11        // omb2*g
	VMULPS  Y7, Y11, Y11       // (omb2*g)*g
	VADDPS  Y11, Y10, Y10      // v'
	VMOVUPS Y10, (R10)
	VSQRTPS Y10, Y11           // sqrt(v')
	VADDPS  Y4, Y11, Y11       // + eps
	VMULPS  Y8, Y5, Y12        // corr*m'
	VDIVPS  Y11, Y12, Y12      // / (sqrt+eps)
	VMOVUPS (R8), Y13
	VSUBPS  Y12, Y13, Y13      // w - update
	VMOVUPS Y13, (R8)
	TESTQ R12, R12
	JE    adam2_nozero
	VMOVUPS Y6, (R11)

adam2_nozero:
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $8, DX
	JNE  adam2_blk8
	VZEROUPPER
	RET

// func dotBF16F32AVX2Asm(a *bf16.BF16, b *float32, n int64) float32
// a lanes expand bfloat16 -> float32 (zero-extend word, shift into the high
// half — the exact software expansion), then FMA with b.
TEXT ·dotBF16F32AVX2Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

bfdot2_blk16:
	CMPQ DX, $16
	JLT  bfdot2_blk8
	VPMOVZXWD (SI), Y4
	VPMOVZXWD 16(SI), Y5
	VPSLLD $16, Y4, Y4
	VPSLLD $16, Y5, Y5
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  bfdot2_blk16

bfdot2_blk8:
	TESTQ DX, DX
	JE    bfdot2_reduce
	VPMOVZXWD (SI), Y4
	VPSLLD $16, Y4, Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, DX
	JMP  bfdot2_blk8

bfdot2_reduce:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func dotBF16AVX2Asm(a, b *bf16.BF16, n int64) float32
// Both operands expand bfloat16 -> float32, then FMA.
TEXT ·dotBF16AVX2Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Y0, Y0, Y0

bfboth2_blk8:
	VPMOVZXWD (SI), Y4
	VPSLLD $16, Y4, Y4
	VPMOVZXWD (DI), Y5
	VPSLLD $16, Y5, Y5
	VFMADD231PS Y5, Y4, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $8, DX
	JNE  bfboth2_blk8

	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyBF16AVX2Asm(alpha float32, x *bf16.BF16, y *float32, n int64)
// y[i] += alpha * expand(x[i]), two roundings per lane.
TEXT ·axpyBF16AVX2Asm(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX

bfaxpy2_blk8:
	VPMOVZXWD (SI), Y1
	VPSLLD $16, Y1, Y1
	VMULPS  Y1, Y0, Y1
	VADDPS  (DI), Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $8, DX
	JNE  bfaxpy2_blk8
	VZEROUPPER
	RET
