package simd

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
)

// The assembly-tier equivalence suite. Every kernel in every available mode
// is compared against the scalar reference over the boundary lengths
// (0/1/15/16/17/31/32/33/65, plus longer stretches) and at unaligned base
// offsets (the arena guarantees 64-byte alignment of backing blocks, but
// kernels must accept any offset).
//
// Tolerance policy (see DESIGN.md "Native kernel backend"):
//   - Elementwise kernels (Axpy, AxpyTwo, Add, Scale, AdamStep, AdamStepZero,
//     AxpyBF16, PackBF16, RoundBF16) must be BIT-IDENTICAL across tiers: the
//     assembly uses the same two-rounding mul/add schedule as the Go code.
//   - Reductions (Dot, Sum, DotBF16*, DotManyBias*) may differ by summation
//     order and FMA contraction; they are compared against a float64
//     reference with a tolerance scaled to the sum of absolute products.
//   - Max is order-insensitive and must be exact (NaN inputs excluded).

// testLengths are the boundary lengths from the issue plus deeper blocks
// that exercise the unrolled 32/64-element loops and their step-down paths.
var testLengths = []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 128, 129, 255, 1024}

// asmModes returns every mode whose table differs from the scalar reference,
// including downgraded tables (so the suite still runs the portable tier on
// hosts without the assembly).
func asmModes(t *testing.T) []Mode {
	t.Helper()
	modes := []Mode{Vector}
	for _, m := range []Mode{AVX2, AVX512} {
		if Supported(m) {
			modes = append(modes, m)
		} else {
			t.Logf("mode %s unsupported on this host (GOARCH=%s), testing downgrade only", m, runtime.GOARCH)
		}
	}
	return modes
}

// offsetSlice returns a slice of length n whose backing base is offset by
// off elements from its allocation start (unaligned vector loads).
func offsetSlice(rng *rand.Rand, n, off int) []float32 {
	buf := randSlice(rng, n+off)
	return buf[off : off+n : off+n]
}

// dotRef computes the float64 reference and the |a_i*b_i| magnitude scale.
func dotRef(a, b []float32) (ref, scale float64) {
	for i := range a {
		p := float64(a[i]) * float64(b[i])
		ref += p
		scale += math.Abs(p)
	}
	return ref, scale
}

// checkReduction asserts |got-ref| <= tol*(1+scale): reductions across tiers
// agree to a few float32 ULPs of the accumulated magnitude.
func checkReduction(t *testing.T, name string, got float32, ref, scale float64) {
	t.Helper()
	const tol = 1e-5
	if diff := math.Abs(float64(got) - ref); diff > tol*(1+scale) {
		t.Errorf("%s: got %g, reference %g (diff %g, scale %g)", name, got, ref, diff, scale)
	}
}

func TestActiveResolvesBestTier(t *testing.T) {
	// Acceptance gate: on a host with an assembly tier, the package must
	// auto-select it at startup (the env knob can still force another mode,
	// which the suite respects so forced-mode CI lanes stay meaningful).
	cur := CurrentMode()
	if forced := forcedEnvMode(); forced >= 0 {
		if cur != forced {
			t.Errorf("SLIDE_KERNEL_MODE forced %s but startup mode is %s", forced, cur)
		}
	} else if cur != Best() {
		t.Errorf("startup mode %s, want Best() = %s", cur, Best())
	}
	if Active().Mode != cur {
		t.Errorf("Active().Mode = %s, CurrentMode = %s", Active().Mode, cur)
	}
}

func TestSupportedAndClamp(t *testing.T) {
	if !Supported(Scalar) || !Supported(Vector) {
		t.Fatal("Go tiers must always be supported")
	}
	if Supported(Mode(99)) {
		t.Error("unknown mode reported as supported")
	}
	for _, m := range []Mode{Scalar, Vector, AVX2, AVX512} {
		got := ForMode(m).Mode
		if Supported(m) && got != m {
			t.Errorf("ForMode(%s).Mode = %s", m, got)
		}
		if !Supported(m) && (got == AVX2 || got == AVX512) && !Supported(got) {
			t.Errorf("ForMode(%s) returned unsupported tier %s", m, got)
		}
	}
	// Best is supported and at least Vector.
	if b := Best(); !Supported(b) || b == Scalar {
		t.Errorf("Best() = %s", b)
	}
}

func TestModeStrings(t *testing.T) {
	if AVX2.String() != "avx2" || AVX512.String() != "avx512" {
		t.Error("assembly tier Mode.String values wrong")
	}
}

func TestDotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			for _, off := range []int{0, 1, 3} {
				a := offsetSlice(rng, n, off)
				b := offsetSlice(rng, n, off)
				ref, scale := dotRef(a, b)
				checkReduction(t, fmt.Sprintf("%s Dot n=%d off=%d", m, n, off), ks.Dot(a, b), ref, scale)
			}
		}
	}
}

func TestSumEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			x := offsetSlice(rng, n, 1)
			var ref, scale float64
			for _, v := range x {
				ref += float64(v)
				scale += math.Abs(float64(v))
			}
			checkReduction(t, fmt.Sprintf("%s Sum n=%d", m, n), ks.Sum(x), ref, scale)
		}
	}
}

func TestMaxEquivalenceExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			if n == 0 {
				continue
			}
			for _, off := range []int{0, 2} {
				x := offsetSlice(rng, n, off)
				want := Max(x)
				if got := ks.Max(x); got != want {
					t.Errorf("%s Max n=%d off=%d: got %g want %g", m, n, off, got, want)
				}
			}
		}
		// All-negative and -Inf-heavy inputs (the DWTA gather fills missing
		// slots with -Inf).
		neg := []float32{-5, -4, -3.5, -9, -1.25, -8, -7, -6, -2, -10, -11, -12, -13, -14, -15, -16, -0.5}
		if got := ks.Max(neg); got != -0.5 {
			t.Errorf("%s Max all-negative: got %g", m, got)
		}
		inf := make([]float32, 40)
		for i := range inf {
			inf[i] = float32(math.Inf(-1))
		}
		inf[37] = -2
		if got := ks.Max(inf); got != -2 {
			t.Errorf("%s Max -Inf fill: got %g", m, got)
		}
	}
}

// checkExact asserts two float32 slices are bit-identical.
func checkExact(t *testing.T, name string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Errorf("%s: index %d got %g (%#x) want %g (%#x)", name, i,
				got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
			return
		}
	}
}

func TestAxpyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			for _, off := range []int{0, 1} {
				x := offsetSlice(rng, n, off)
				y0 := offsetSlice(rng, n, off)
				want := append([]float32(nil), y0...)
				axpyScalar(0.37, x, want)
				got := append([]float32(nil), y0...)
				ks.Axpy(0.37, x, got)
				checkExact(t, fmt.Sprintf("%s Axpy n=%d off=%d", m, n, off), got, want)

				got2 := append([]float32(nil), y0...)
				ks.ScaleAccum(0.37, x, got2)
				checkExact(t, fmt.Sprintf("%s ScaleAccum n=%d", m, n), got2, want)
			}
		}
	}
}

func TestAddScaleBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			x := offsetSlice(rng, n, 1)
			y0 := offsetSlice(rng, n, 1)

			want := append([]float32(nil), y0...)
			addScalar(x, want)
			got := append([]float32(nil), y0...)
			ks.Add(x, got)
			checkExact(t, fmt.Sprintf("%s Add n=%d", m, n), got, want)

			wantS := append([]float32(nil), x...)
			scaleScalar(-1.75, wantS)
			gotS := append([]float32(nil), x...)
			ks.Scale(-1.75, gotS)
			checkExact(t, fmt.Sprintf("%s Scale n=%d", m, n), gotS, wantS)
		}
	}
}

func TestAxpyTwoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			h := offsetSlice(rng, n, 1)
			w := offsetSlice(rng, n, 1)
			grad0 := offsetSlice(rng, n, 1)
			dh0 := offsetSlice(rng, n, 1)

			wantG := append([]float32(nil), grad0...)
			wantD := append([]float32(nil), dh0...)
			axpyTwoScalar(0.81, h, wantG, w, wantD)

			gotG := append([]float32(nil), grad0...)
			gotD := append([]float32(nil), dh0...)
			ks.AxpyTwo(0.81, h, gotG, w, gotD)
			checkExact(t, fmt.Sprintf("%s AxpyTwo grad n=%d", m, n), gotG, wantG)
			checkExact(t, fmt.Sprintf("%s AxpyTwo dh n=%d", m, n), gotD, wantD)
		}
	}
}

func TestAxpyTwoFusedBitIdentical(t *testing.T) {
	// The always-fused benchmark entry point matches the scalar reference
	// under every mode (it only changes walk shape, never arithmetic).
	rng := rand.New(rand.NewPCG(21, 1))
	for _, m := range AvailableModes() {
		withMode(t, m, func() {
			for _, n := range []int{0, 5, 16, 33, 128} {
				h := randSlice(rng, n)
				w := randSlice(rng, n)
				grad0 := randSlice(rng, n)
				dh0 := randSlice(rng, n)
				wantG := append([]float32(nil), grad0...)
				wantD := append([]float32(nil), dh0...)
				axpyTwoScalar(0.6, h, wantG, w, wantD)
				gotG := append([]float32(nil), grad0...)
				gotD := append([]float32(nil), dh0...)
				AxpyTwoFused(0.6, h, gotG, w, gotD)
				checkExact(t, fmt.Sprintf("%s AxpyTwoFused grad n=%d", m, n), gotG, wantG)
				checkExact(t, fmt.Sprintf("%s AxpyTwoFused dh n=%d", m, n), gotD, wantD)
			}
		})
	}
}

func adamInputs(rng *rand.Rand, n int) (w, m, v, g []float32) {
	w = randSlice(rng, n)
	m = randSlice(rng, n)
	v = randSlice(rng, n)
	g = randSlice(rng, n)
	for i := range v {
		v[i] = float32(math.Abs(float64(v[i]))) // second moment is non-negative
	}
	return
}

func TestAdamStepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 1))
	p := NewAdamParams(1e-3, 0.9, 0.999, 1e-8, 7)
	for _, mode := range asmModes(t) {
		ks := ForMode(mode)
		for _, n := range testLengths {
			w0, m0, v0, g0 := adamInputs(rng, n)
			for _, zero := range []bool{false, true} {
				wW := append([]float32(nil), w0...)
				wM := append([]float32(nil), m0...)
				wV := append([]float32(nil), v0...)
				wG := append([]float32(nil), g0...)
				gW := append([]float32(nil), w0...)
				gM := append([]float32(nil), m0...)
				gV := append([]float32(nil), v0...)
				gG := append([]float32(nil), g0...)
				name := fmt.Sprintf("%s AdamStep zero=%v n=%d", mode, zero, n)
				if zero {
					adamZeroScalar(wW, wM, wV, wG, p)
					ks.AdamStepZero(gW, gM, gV, gG, p)
				} else {
					adamScalar(wW, wM, wV, wG, p)
					ks.AdamStep(gW, gM, gV, gG, p)
				}
				checkExact(t, name+" w", gW, wW)
				checkExact(t, name+" m", gM, wM)
				checkExact(t, name+" v", gV, wV)
				checkExact(t, name+" g", gG, wG)
			}
		}
	}
}

func TestDotManyBiasEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 1))
	const nRows, dim = 64, 65 // odd dim: every row dot takes the tail path
	rows := make([][]float32, nRows)
	rowsBF := make([][]bf16.BF16, nRows)
	for i := range rows {
		rows[i] = randSlice(rng, dim)
		rowsBF[i] = bf16.FromSlice(rows[i])
	}
	bias := randSlice(rng, nRows)
	h := randSlice(rng, dim)
	hBF := bf16.FromSlice(h)
	ids := make([]int32, 33)
	for i := range ids {
		ids[i] = int32(rng.IntN(nRows))
	}
	ref := make([]float32, len(ids))
	dotManyBiasScalar(rows, bias, ids, h, ref)

	for _, m := range asmModes(t) {
		ks := ForMode(m)
		out := make([]float32, len(ids))
		ks.DotManyBias(rows, bias, ids, h, out)
		for k := range ref {
			rf, scale := dotRef(rows[ids[k]], h)
			checkReduction(t, fmt.Sprintf("%s DotManyBias k=%d", m, k), out[k], rf+float64(bias[ids[k]]), scale)
		}

		outBF := make([]float32, len(ids))
		ks.DotManyBiasBF16Act(rows, bias, ids, hBF, outBF)
		refBF := make([]float32, len(ids))
		dotManyBiasBF16ActScalar(rows, bias, ids, hBF, refBF)
		for k := range refBF {
			if !approxEqual(float64(outBF[k]), float64(refBF[k]), 1e-4) {
				t.Errorf("%s DotManyBiasBF16Act k=%d: got %g want %g", m, k, outBF[k], refBF[k])
			}
		}

		outB := make([]float32, len(ids))
		ks.DotManyBiasBF16(rowsBF, bias, ids, hBF, outB)
		refB := make([]float32, len(ids))
		dotManyBiasBF16Scalar(rowsBF, bias, ids, hBF, refB)
		for k := range refB {
			if !approxEqual(float64(outB[k]), float64(refB[k]), 1e-4) {
				t.Errorf("%s DotManyBiasBF16 k=%d: got %g want %g", m, k, outB[k], refB[k])
			}
		}
	}
}

func TestBF16DotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(18, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			a := bf16.FromSlice(offsetSlice(rng, n, 1))
			b := offsetSlice(rng, n, 1)
			bBF := bf16.FromSlice(b)

			var ref, scale float64
			for i := range a {
				p := float64(a[i].Float32()) * float64(b[i])
				ref += p
				scale += math.Abs(p)
			}
			checkReduction(t, fmt.Sprintf("%s DotBF16F32 n=%d", m, n), ks.DotBF16F32(a, b), ref, scale)

			ref, scale = 0, 0
			for i := range a {
				p := float64(a[i].Float32()) * float64(bBF[i].Float32())
				ref += p
				scale += math.Abs(p)
			}
			checkReduction(t, fmt.Sprintf("%s DotBF16 n=%d", m, n), ks.DotBF16(a, bBF), ref, scale)
		}
	}
}

func TestAxpyBF16BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			x := bf16.FromSlice(offsetSlice(rng, n, 1))
			y0 := offsetSlice(rng, n, 1)
			want := append([]float32(nil), y0...)
			axpyBF16Scalar(1.3, x, want)
			got := append([]float32(nil), y0...)
			ks.AxpyBF16(1.3, x, got)
			checkExact(t, fmt.Sprintf("%s AxpyBF16 n=%d", m, n), got, want)
		}
	}
}

func TestPackRoundBF16Equivalence(t *testing.T) {
	// Inputs stay in the normal float32 range: the hardware converter
	// (VCVTNEPS2BF16) flushes subnormal inputs to zero, a documented
	// divergence from the software rounder. Normal values, zeros, infinities
	// and NaNs convert identically.
	rng := rand.New(rand.NewPCG(20, 1))
	for _, m := range asmModes(t) {
		ks := ForMode(m)
		for _, n := range testLengths {
			src := offsetSlice(rng, n, 1)
			if n > 4 {
				src[0] = 0
				src[1] = float32(math.Inf(1))
				src[2] = float32(math.Inf(-1))
				src[3] = 3.39e38 // near MaxFloat32: rounds up to +Inf in bf16
			}
			want := make([]bf16.BF16, n)
			bf16.Convert(want, src)
			got := make([]bf16.BF16, n)
			ks.PackBF16(got, src)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s PackBF16 n=%d i=%d: got %#x want %#x (src %g)", m, n, i, got[i], want[i], src[i])
					break
				}
			}

			wantR := append([]float32(nil), src...)
			bf16.RoundSlice(wantR)
			gotR := append([]float32(nil), src...)
			ks.RoundBF16(gotR)
			checkExact(t, fmt.Sprintf("%s RoundBF16 n=%d", m, n), gotR, wantR)
		}
	}
}

func TestPackBF16NaNQuieting(t *testing.T) {
	// NaN payloads survive truncation with the quiet bit set, on every tier.
	src := []float32{math.Float32frombits(0x7FC01234), math.Float32frombits(0xFF800001), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	want := make([]bf16.BF16, len(src))
	bf16.Convert(want, src)
	for _, m := range asmModes(t) {
		got := make([]bf16.BF16, len(src))
		ForMode(m).PackBF16(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s PackBF16 NaN i=%d: got %#x want %#x", m, i, got[i], want[i])
			}
		}
	}
}

// FuzzDotModes cross-checks every available tier's Dot against the float64
// reference on arbitrary inputs.
func FuzzDotModes(f *testing.F) {
	f.Add(uint64(1), 17)
	f.Add(uint64(42), 129)
	f.Add(uint64(7), 1)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		a := randSlice(rng, n)
		b := randSlice(rng, n)
		ref, scale := dotRef(a, b)
		for _, m := range []Mode{Vector, AVX2, AVX512} {
			checkReduction(t, fmt.Sprintf("fuzz %s Dot n=%d", m, n), ForMode(m).Dot(a, b), ref, scale)
		}
	})
}

// FuzzAdamModes cross-checks the fused optimizer bit-identically on
// arbitrary shapes and hyperparameters.
func FuzzAdamModes(f *testing.F) {
	f.Add(uint64(3), 33, int64(5))
	f.Fuzz(func(t *testing.T, seed uint64, n int, step int64) {
		if n < 0 || n > 2048 || step < 1 || step > 1e6 {
			t.Skip()
		}
		rng := rand.New(rand.NewPCG(seed, 5))
		w0, m0, v0, g0 := adamInputs(rng, n)
		p := NewAdamParams(1e-3, 0.9, 0.999, 1e-8, step)
		wW := append([]float32(nil), w0...)
		wM := append([]float32(nil), m0...)
		wV := append([]float32(nil), v0...)
		wG := append([]float32(nil), g0...)
		adamZeroScalar(wW, wM, wV, wG, p)
		for _, mode := range []Mode{Vector, AVX2, AVX512} {
			gW := append([]float32(nil), w0...)
			gM := append([]float32(nil), m0...)
			gV := append([]float32(nil), v0...)
			gG := append([]float32(nil), g0...)
			ForMode(mode).AdamStepZero(gW, gM, gV, gG, p)
			name := fmt.Sprintf("fuzz %s AdamStepZero n=%d", mode, n)
			checkExact(t, name+" w", gW, wW)
			checkExact(t, name+" m", gM, wM)
			checkExact(t, name+" v", gV, wV)
			checkExact(t, name+" g", gG, wG)
		}
	})
}

// forcedEnvMode reports the mode forced by SLIDE_KERNEL_MODE, or -1.
func forcedEnvMode() Mode {
	switch envMode := envKernelMode(); envMode {
	case "scalar":
		return Scalar
	case "vector", "portable":
		return Vector
	case "avx2":
		return clampMode(AVX2)
	case "avx512":
		return clampMode(AVX512)
	}
	return Mode(-1)
}
