package simd

import "math"

// AdamParams bundles the hyperparameters of one ADAM step. CorrLR folds the
// learning rate together with the bias-correction terms:
//
//	CorrLR = lr * sqrt(1-beta2^t) / (1-beta1^t)
//
// so the inner loop is exactly the paper's Figure 3 stream: one fused pass
// over (w, m, v, g) in contiguous memory.
type AdamParams struct {
	Beta1, Beta2 float32
	Eps          float32
	CorrLR       float32
}

// NewAdamParams computes the fused step parameters for step t (1-based).
func NewAdamParams(lr, beta1, beta2, eps float64, t int64) AdamParams {
	bc1 := 1 - math.Pow(beta1, float64(t))
	bc2 := 1 - math.Pow(beta2, float64(t))
	return AdamParams{
		Beta1:  float32(beta1),
		Beta2:  float32(beta2),
		Eps:    float32(eps),
		CorrLR: float32(lr * math.Sqrt(bc2) / bc1),
	}
}

// AdamStep applies one ADAM update over the contiguous block:
//
//	m = beta1*m + (1-beta1)*g
//	v = beta2*v + (1-beta2)*g^2
//	w -= CorrLR * m / (sqrt(v) + eps)
//
// All four slices must have equal length. This is the §4.3.1 kernel: because
// the weight matrix is one contiguous block, the 2D update collapses into
// this 1D blocked loop.
func AdamStep(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStep length mismatch")
	}
	Active().AdamStep(w, m, v, g, p)
}

// AdamStepVec is the 16-lane implementation, exported for equivalence tests.
func AdamStepVec(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStepVec length mismatch")
	}
	adamVec(w, m, v, g, p)
}

// AdamStepScalar is the naive implementation.
func AdamStepScalar(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStepScalar length mismatch")
	}
	adamScalar(w, m, v, g, p)
}

func adamVec(w, m, v, g []float32, p AdamParams) {
	n := len(w)
	m = m[:n]
	v = v[:n]
	g = g[:n]
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	i := 0
	for ; i+Width <= n; i += Width {
		ww := w[i : i+Width : i+Width]
		mm := m[i : i+Width : i+Width]
		vv := v[i : i+Width : i+Width]
		gg := g[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			gk := gg[k]
			mk := p.Beta1*mm[k] + omb1*gk
			vk := p.Beta2*vv[k] + omb2*gk*gk
			mm[k] = mk
			vv[k] = vk
			ww[k] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
		}
	}
	for ; i < n; i++ {
		gk := g[i]
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
	}
}

func adamScalar(w, m, v, g []float32, p AdamParams) {
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	for i := range w {
		gk := g[i]
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] -= p.CorrLR * mk / (sqrt32(vk) + p.Eps)
	}
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
