//go:build amd64

#include "textflag.h"

// Integer dot kernels for the quantized serving tier.
//
// Unlike the float kernels, these are EXACT: integer accumulation is
// associative, so any blocking/unroll produces the identical int32 as the
// scalar reference — provided nothing saturates. The operand contract
// (activations in [0,127], weights in [-127,127], enforced by internal/quant)
// keeps every intermediate in range: a VPMADDWD pairwise sum peaks at
// 2*127*127 = 32258, far inside int32, and the i16 products themselves are
// produced by widening moves, so no saturating instruction is on the path.

// func dotU8S8AVX2Asm(a *uint8, b *int8, n int64) int32
// Contract: n > 0 and n%16 == 0.
//
// Per 16-byte block: widen u8->i16 (VPMOVZXBW) and s8->i16 (VPMOVSXBW), then
// VPMADDWD forms the eight pairwise i32 products-of-sums and VPADDD
// accumulates. VPMADDWD only saturates when both pair products are
// 0x8000*0x8000, unreachable from widened bytes.
TEXT ·dotU8S8AVX2Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1

i8dot2_blk32:
	CMPQ DX, $32
	JLT  i8dot2_blk16
	VPMOVZXBW (SI), Y2
	VPMOVSXBW (DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	VPMOVZXBW 16(SI), Y4
	VPMOVSXBW 16(DI), Y5
	VPMADDWD  Y5, Y4, Y4
	VPADDD    Y4, Y1, Y1
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $32, DX
	JMP  i8dot2_blk32

i8dot2_blk16:
	TESTQ DX, DX
	JE    i8dot2_reduce
	VPMOVZXBW (SI), Y2
	VPMOVSXBW (DI), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y0, Y0
	ADDQ $16, SI
	ADDQ $16, DI
	SUBQ $16, DX
	JMP  i8dot2_blk16

i8dot2_reduce:
	VPADDD Y1, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD  X1, X0, X0
	VPHADDD X0, X0, X0
	VPHADDD X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func dotU8S8VNNIAsm(a *uint8, b *int8, n int64) int32
// Contract: n > 0 and n%64 == 0. Requires AVX512-VNNI.
//
// VPDPBUSD fuses the whole widen/multiply/pair-add pipeline: each i32 lane
// accumulates four u8*s8 products per instruction, 64 bytes per issue.
// Go assembler operand order: VPDPBUSD Z1, Z0, Z2 is Intel
// "vpdpbusd zmm2, zmm0, zmm1" — Z2 += Z0(unsigned bytes) * Z1(signed bytes).
TEXT ·dotU8S8VNNIAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VPXORD Z2, Z2, Z2
	VPXORD Z3, Z3, Z3

i8dotv_blk128:
	CMPQ DX, $128
	JLT  i8dotv_blk64
	VMOVDQU32 (SI), Z0
	VMOVDQU32 (DI), Z1
	VPDPBUSD  Z1, Z0, Z2
	VMOVDQU32 64(SI), Z4
	VMOVDQU32 64(DI), Z5
	VPDPBUSD  Z5, Z4, Z3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $128, DX
	JMP  i8dotv_blk128

i8dotv_blk64:
	TESTQ DX, DX
	JE    i8dotv_reduce
	VMOVDQU32 (SI), Z0
	VMOVDQU32 (DI), Z1
	VPDPBUSD  Z1, Z0, Z2
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $64, DX
	JMP  i8dotv_blk64

i8dotv_reduce:
	VPADDD Z3, Z2, Z2
	VEXTRACTI64X4 $1, Z2, Y3
	VPADDD Y3, Y2, Y2
	VEXTRACTI128 $1, Y2, X3
	VPADDD  X3, X2, X2
	VPHADDD X2, X2, X2
	VPHADDD X2, X2, X2
	VZEROUPPER
	MOVSS X2, ret+24(FP)
	RET
