package simd

import "github.com/slide-cpu/slide/internal/bf16"

// Mixed-precision kernels for the §4.4 quantization modes. On CPX these map
// to AVX512-BF16 instructions (VDPBF16PS dot products); here they expand
// bfloat16 lanes to float32 on the fly, which preserves the numerics and the
// halved memory traffic while paying a software conversion cost (see
// DESIGN.md "Known divergences").

// DotBF16F32 returns the inner product of a bfloat16 vector and a float32
// vector. Used when weights are stored in BF16 (mode 1) or the activation is
// stored in BF16 (mode 2, with the operands swapped by the caller).
func DotBF16F32(a []bf16.BF16, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: DotBF16F32 length mismatch")
	}
	return Active().DotBF16F32(a, b)
}

func dotBF16Vec(a []bf16.BF16, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+Width <= n; i += Width {
		x := a[i : i+Width : i+Width]
		y := b[i : i+Width : i+Width]
		s0 += x[0].Float32()*y[0] + x[1].Float32()*y[1] + x[2].Float32()*y[2] + x[3].Float32()*y[3]
		s1 += x[4].Float32()*y[4] + x[5].Float32()*y[5] + x[6].Float32()*y[6] + x[7].Float32()*y[7]
		s2 += x[8].Float32()*y[8] + x[9].Float32()*y[9] + x[10].Float32()*y[10] + x[11].Float32()*y[11]
		s3 += x[12].Float32()*y[12] + x[13].Float32()*y[13] + x[14].Float32()*y[14] + x[15].Float32()*y[15]
	}
	for ; i < n; i++ {
		s0 += a[i].Float32() * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func dotBF16Scalar(a []bf16.BF16, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i].Float32() * b[i]
	}
	return s
}

// DotBF16 returns the inner product of two bfloat16 vectors (mode 1: both
// weights and activations quantized).
func DotBF16(a, b []bf16.BF16) float32 {
	if len(a) != len(b) {
		panic("simd: DotBF16 length mismatch")
	}
	return Active().DotBF16(a, b)
}

func dotBF16BothVec(a, b []bf16.BF16) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1 float32
	i := 0
	for ; i+8 <= n; i += 8 {
		x := a[i : i+8 : i+8]
		y := b[i : i+8 : i+8]
		s0 += x[0].Float32()*y[0].Float32() + x[1].Float32()*y[1].Float32() +
			x[2].Float32()*y[2].Float32() + x[3].Float32()*y[3].Float32()
		s1 += x[4].Float32()*y[4].Float32() + x[5].Float32()*y[5].Float32() +
			x[6].Float32()*y[6].Float32() + x[7].Float32()*y[7].Float32()
	}
	for ; i < n; i++ {
		s0 += a[i].Float32() * b[i].Float32()
	}
	return s0 + s1
}

func dotBF16BothScalar(a, b []bf16.BF16) float32 {
	var s float32
	for i := range a {
		s += a[i].Float32() * b[i].Float32()
	}
	return s
}

// AxpyBF16 computes y += alpha*x where x is stored in bfloat16.
func AxpyBF16(alpha float32, x []bf16.BF16, y []float32) {
	if len(x) != len(y) {
		panic("simd: AxpyBF16 length mismatch")
	}
	Active().AxpyBF16(alpha, x, y)
}

func axpyBF16Vec(alpha float32, x []bf16.BF16, y []float32) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		xx := x[i : i+Width : i+Width]
		yy := y[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			yy[k] += alpha * xx[k].Float32()
		}
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i].Float32()
	}
}

func axpyBF16Scalar(alpha float32, x []bf16.BF16, y []float32) {
	for i := range x {
		y[i] += alpha * x[i].Float32()
	}
}

// AdamStepBF16 applies one fused ADAM update to weights stored in bfloat16
// (mode 1). The first and second moments stay in float32; each weight lane is
// expanded, updated, and re-rounded to BF16 (round-to-nearest-even), exactly
// what an AVX512-BF16 pipeline does around its FP32 accumulators. The
// element-local math is identical under both kernel modes, so a single
// implementation backs both table entries.
func AdamStepBF16(w []bf16.BF16, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStepBF16 length mismatch")
	}
	adamStepBF16(w, m, v, g, p)
}

func adamStepBF16(w []bf16.BF16, m, v, g []float32, p AdamParams) {
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	for i := range w {
		gk := g[i]
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] = bf16.FromFloat32(w[i].Float32() - p.CorrLR*mk/(sqrt32(vk)+p.Eps))
	}
}

// AdamStepZeroBF16 is AdamStepBF16 fused with the gradient clear: each lane
// of g is consumed and zeroed in the same pass, so a touched BF16 weight row
// is walked once per batch instead of twice (AdamStepBF16 then Zero).
func AdamStepZeroBF16(w []bf16.BF16, m, v, g []float32, p AdamParams) {
	n := len(w)
	if len(m) != n || len(v) != n || len(g) != n {
		panic("simd: AdamStepZeroBF16 length mismatch")
	}
	adamStepZeroBF16(w, m, v, g, p)
}

func adamStepZeroBF16(w []bf16.BF16, m, v, g []float32, p AdamParams) {
	omb1 := 1 - p.Beta1
	omb2 := 1 - p.Beta2
	for i := range w {
		gk := g[i]
		g[i] = 0
		mk := p.Beta1*m[i] + omb1*gk
		vk := p.Beta2*v[i] + omb2*gk*gk
		m[i] = mk
		v[i] = vk
		w[i] = bf16.FromFloat32(w[i].Float32() - p.CorrLR*mk/(sqrt32(vk)+p.Eps))
	}
}

// DotManyBiasBF16Act computes out[k] = hBF·rows[ids[k]] + bias[ids[k]] for a
// whole active set under the BF16-activation mode (FP32 weights, BF16
// activation). See DotManyBias for the dispatch-amortization rationale.
func DotManyBiasBF16Act(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	if len(out) < len(ids) {
		panic("simd: DotManyBiasBF16Act output buffer too short")
	}
	Active().DotManyBiasBF16Act(rows, bias, ids, hBF, out)
}

func dotManyBiasBF16ActVec(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16Act row length mismatch")
		}
		out[k] = dotBF16Vec(hBF, r) + bias[id]
	}
}

func dotManyBiasBF16ActScalar(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16Act row length mismatch")
		}
		out[k] = dotBF16Scalar(hBF, r) + bias[id]
	}
}

// DotManyBiasBF16 computes out[k] = rows[ids[k]]·hBF + bias[ids[k]] for a
// whole active set under the BF16-both mode (BF16 weights and activation).
func DotManyBiasBF16(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	if len(out) < len(ids) {
		panic("simd: DotManyBiasBF16 output buffer too short")
	}
	Active().DotManyBiasBF16(rows, bias, ids, hBF, out)
}

func dotManyBiasBF16Vec(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16 row length mismatch")
		}
		out[k] = dotBF16BothVec(r, hBF) + bias[id]
	}
}

func dotManyBiasBF16Scalar(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32) {
	out = out[:len(ids)]
	for k, id := range ids {
		r := rows[id]
		if len(r) != len(hBF) {
			panic("simd: DotManyBiasBF16 row length mismatch")
		}
		out[k] = dotBF16BothScalar(r, hBF) + bias[id]
	}
}
