package simd

// This file holds the float32 kernels that back Algorithm 1 (dense x,
// row-major W: blocked dot products with a final reduce) and Algorithm 2
// (sparse x, column-major W: broadcast one scalar, multiply a 16-lane block
// of the weight column, accumulate into the dense output), plus the generic
// slice utilities shared by the optimizer and the baselines.

// Dot returns the inner product of a and b.
// It panics if len(a) != len(b).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: Dot length mismatch")
	}
	return Active().Dot(a, b)
}

// DotVec is the 16-lane implementation of Dot, exported for direct use in
// equivalence tests and microbenchmarks.
func DotVec(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: DotVec length mismatch")
	}
	return dotVec(a, b)
}

// DotScalar is the naive implementation of Dot.
func DotScalar(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: DotScalar length mismatch")
	}
	return dotScalar(a, b)
}

func dotVec(a, b []float32) float32 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+Width <= n; i += Width {
		x := a[i : i+Width : i+Width]
		y := b[i : i+Width : i+Width]
		s0 += x[0]*y[0] + x[1]*y[1] + x[2]*y[2] + x[3]*y[3]
		s1 += x[4]*y[4] + x[5]*y[5] + x[6]*y[6] + x[7]*y[7]
		s2 += x[8]*y[8] + x[9]*y[9] + x[10]*y[10] + x[11]*y[11]
		s3 += x[12]*y[12] + x[13]*y[13] + x[14]*y[14] + x[15]*y[15]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func dotScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dot4 computes four inner products sharing the right-hand operand:
// (a0·b, a1·b, a2·b, a3·b), register-blocking the shared vector — the
// batched-GEMV trick AVX-512 kernels use to load b's lanes once per block
// instead of once per row.
//
// Measured negative result (BenchmarkKernelDot4): under the Go compiler
// this blocking is ~1.5x SLOWER than four independent Dot calls — the
// four-accumulator single-stream dot schedules better than the 4-row block.
// The kernel is kept as the documented counterexample: intrinsics-level
// tricks from the paper do not all transfer to Go (see DESIGN.md "Known
// divergences"); hot paths use independent dots.
func Dot4(a0, a1, a2, a3, b []float32) (s0, s1, s2, s3 float32) {
	n := len(b)
	if len(a0) != n || len(a1) != n || len(a2) != n || len(a3) != n {
		panic("simd: Dot4 length mismatch")
	}
	if CurrentMode() == Scalar {
		return dotScalar(a0, b), dotScalar(a1, b), dotScalar(a2, b), dotScalar(a3, b)
	}
	return dot4Vec(a0, a1, a2, a3, b)
}

func dot4Vec(a0, a1, a2, a3, b []float32) (s0, s1, s2, s3 float32) {
	n := len(b)
	a0 = a0[:n]
	a1 = a1[:n]
	a2 = a2[:n]
	a3 = a3[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		bb := b[i : i+Width : i+Width]
		x0 := a0[i : i+Width : i+Width]
		x1 := a1[i : i+Width : i+Width]
		x2 := a2[i : i+Width : i+Width]
		x3 := a3[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			v := bb[k]
			s0 += x0[k] * v
			s1 += x1[k] * v
			s2 += x2[k] * v
			s3 += x3[k] * v
		}
	}
	for ; i < n; i++ {
		v := b[i]
		s0 += a0[i] * v
		s1 += a1[i] * v
		s2 += a2[i] * v
		s3 += a3[i] * v
	}
	return s0, s1, s2, s3
}

// Axpy computes y += alpha*x (the BLAS axpy). It panics on length mismatch.
// This is the backward-pass kernel for Algorithm 1: accumulating
// grad_i * W[i] rows into the dense input gradient.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("simd: Axpy length mismatch")
	}
	Active().Axpy(alpha, x, y)
}

// AxpyVec is the 16-lane implementation of Axpy.
func AxpyVec(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("simd: AxpyVec length mismatch")
	}
	axpyVec(alpha, x, y)
}

// AxpyScalar is the naive implementation of Axpy.
func AxpyScalar(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("simd: AxpyScalar length mismatch")
	}
	axpyScalar(alpha, x, y)
}

func axpyVec(alpha float32, x, y []float32) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		xx := x[i : i+Width : i+Width]
		yy := y[i : i+Width : i+Width]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
		yy[4] += alpha * xx[4]
		yy[5] += alpha * xx[5]
		yy[6] += alpha * xx[6]
		yy[7] += alpha * xx[7]
		yy[8] += alpha * xx[8]
		yy[9] += alpha * xx[9]
		yy[10] += alpha * xx[10]
		yy[11] += alpha * xx[11]
		yy[12] += alpha * xx[12]
		yy[13] += alpha * xx[13]
		yy[14] += alpha * xx[14]
		yy[15] += alpha * xx[15]
	}
	for ; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

func axpyScalar(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	Active().Scale(alpha, x)
}

func scaleVec(alpha float32, x []float32) {
	n := len(x)
	i := 0
	for ; i+Width <= n; i += Width {
		xx := x[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			xx[k] *= alpha
		}
	}
	for ; i < n; i++ {
		x[i] *= alpha
	}
}

func scaleScalar(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes y += x element-wise. It panics on length mismatch.
func Add(x, y []float32) {
	if len(x) != len(y) {
		panic("simd: Add length mismatch")
	}
	Active().Add(x, y)
}

func addVec(x, y []float32) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+Width <= n; i += Width {
		xx := x[i : i+Width : i+Width]
		yy := y[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			yy[k] += xx[k]
		}
	}
	for ; i < n; i++ {
		y[i] += x[i]
	}
}

func addScalar(x, y []float32) {
	for i := range x {
		y[i] += x[i]
	}
}

// Fill sets every element of x to v (the _mm512_set1 broadcast used before
// Algorithm 2's column accumulation).
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Zero clears x.
func Zero(x []float32) {
	clear(x)
}

// Sum returns the sum of the elements of x (AVX reduce-sum).
func Sum(x []float32) float32 {
	return Active().Sum(x)
}

func sumVec(x []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(x)
	i := 0
	for ; i+Width <= n; i += Width {
		xx := x[i : i+Width : i+Width]
		s0 += xx[0] + xx[1] + xx[2] + xx[3]
		s1 += xx[4] + xx[5] + xx[6] + xx[7]
		s2 += xx[8] + xx[9] + xx[10] + xx[11]
		s3 += xx[12] + xx[13] + xx[14] + xx[15]
	}
	for ; i < n; i++ {
		s0 += x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func sumScalar(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum element of x. It panics on an empty slice.
func Max(x []float32) float32 {
	if len(x) == 0 {
		panic("simd: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of x, breaking ties toward
// the lowest index. It panics on an empty slice. This is the DWTA bin-winner
// kernel (§4.3.3): the vector form scans 16-lane blocks keeping per-lane
// maxima and resolves the winning lane at the end.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("simd: ArgMax of empty slice")
	}
	return Active().ArgMax(x)
}

func argMaxScalar(x []float32) int {
	best := 0
	bv := x[0]
	for i := 1; i < len(x); i++ {
		if x[i] > bv {
			bv = x[i]
			best = i
		}
	}
	return best
}

func argMaxVec(x []float32) int {
	n := len(x)
	if n < Width {
		return argMaxScalar(x)
	}
	// Per-lane running maxima and their indices, then a horizontal resolve.
	var lm [Width]float32
	var li [Width]int
	xx := x[0:Width:Width]
	for k := 0; k < Width; k++ {
		lm[k] = xx[k]
		li[k] = k
	}
	i := Width
	for ; i+Width <= n; i += Width {
		blk := x[i : i+Width : i+Width]
		for k := 0; k < Width; k++ {
			if blk[k] > lm[k] {
				lm[k] = blk[k]
				li[k] = i + k
			}
		}
	}
	best := li[0]
	bv := lm[0]
	for k := 1; k < Width; k++ {
		if lm[k] > bv || (lm[k] == bv && li[k] < best) {
			bv = lm[k]
			best = li[k]
		}
	}
	for ; i < n; i++ {
		if x[i] > bv {
			bv = x[i]
			best = i
		}
	}
	return best
}

// ScaleAccum computes y[i] += v * w[i] for a 16-lane blocked walk of w. It
// is Algorithm 2's inner step: v is one non-zero of the sparse input
// (broadcast into a register) and w is the column-major weight column.
func ScaleAccum(v float32, w, y []float32) {
	// Same computation as Axpy; named separately because it is the
	// column-major hot path and microbenchmarked on its own.
	Axpy(v, w, y)
}

// SquaredNorm returns the sum of squares of x.
func SquaredNorm(x []float32) float32 {
	return Active().Dot(x, x)
}
