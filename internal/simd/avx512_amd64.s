//go:build amd64

#include "textflag.h"

// AVX-512 kernel tier: 16 float32 lanes per zmm register, masked tails.
//
// Every function here accepts any n >= 0 (maxAVX512Asm requires n >= 1) and
// finishes the final partial block with a K-masked load/store, so no Go-side
// remainder loop is needed. As in the AVX2 tier, elementwise kernels use
// separate VMULPS/VADDPS (two roundings, bit-identical to the Go reference)
// and FMA appears only inside dot/sum reductions. The VCVTNEPS2BF16 kernels
// at the bottom additionally require AVX512-BF16 and are only installed in
// the dispatch table when CPUID reports it. The Go assembler has no
// AVX512-BF16 mnemonics, so VCVTNEPS2BF16 Z0 -> Y1 is hand-encoded
// (EVEX.512.F3.0F38.W0 72 /r with reg=Y1, rm=Z0): 62 F2 7E 48 72 C8.

DATA negInf32<>+0(SB)/4, $0xFF800000
GLOBL negInf32<>(SB), RODATA, $4

// tailmask: K1 = (1 << DX) - 1 for DX in [1,15]; clobbers AX, CX.
#define VCVTNEPS2BF16_Z0_Y1 \
	BYTE $0x62; BYTE $0xF2; BYTE $0x7E; BYTE $0x48; BYTE $0x72; BYTE $0xC8

#define TAILMASK \
	MOVL $1, AX \
	MOVQ DX, CX \
	SHLL CX, AX \
	DECL AX     \
	KMOVW AX, K1

// func dotAVX512Asm(a, b *float32, n int64) float32
TEXT ·dotAVX512Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1
	VXORPS Z2, Z2, Z2
	VXORPS Z3, Z3, Z3

dot5_blk64:
	CMPQ DX, $64
	JLT  dot5_blk16
	VMOVUPS (SI), Z4
	VMOVUPS 64(SI), Z5
	VMOVUPS 128(SI), Z6
	VMOVUPS 192(SI), Z7
	VFMADD231PS (DI), Z4, Z0
	VFMADD231PS 64(DI), Z5, Z1
	VFMADD231PS 128(DI), Z6, Z2
	VFMADD231PS 192(DI), Z7, Z3
	ADDQ $256, SI
	ADDQ $256, DI
	SUBQ $64, DX
	JMP  dot5_blk64

dot5_blk16:
	CMPQ DX, $16
	JLT  dot5_tail
	VMOVUPS (SI), Z4
	VFMADD231PS (DI), Z4, Z0
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  dot5_blk16

dot5_tail:
	TESTQ DX, DX
	JE    dot5_reduce
	TAILMASK
	VMOVUPS.Z (SI), K1, Z4
	VMOVUPS.Z (DI), K1, Z5
	VFMADD231PS Z5, Z4, Z0

dot5_reduce:
	VADDPS Z1, Z0, Z0
	VADDPS Z3, Z2, Z2
	VADDPS Z2, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyAVX512Asm(alpha float32, x, y *float32, n int64)
TEXT ·axpyAVX512Asm(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Z0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX

axpy5_blk16:
	CMPQ DX, $16
	JLT  axpy5_tail
	VMOVUPS (SI), Z1
	VMULPS  Z1, Z0, Z1
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  axpy5_blk16

axpy5_tail:
	TESTQ DX, DX
	JE    axpy5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z1
	VMULPS  Z1, Z0, Z1
	VMOVUPS.Z (DI), K1, Z2
	VADDPS  Z2, Z1, Z1
	VMOVUPS Z1, K1, (DI)

axpy5_done:
	VZEROUPPER
	RET

// func axpyTwoAVX512Asm(gz float32, h, grad, w, dh *float32, n int64)
TEXT ·axpyTwoAVX512Asm(SB), NOSPLIT, $0-48
	VBROADCASTSS gz+0(FP), Z0
	MOVQ h+8(FP), SI
	MOVQ grad+16(FP), DI
	MOVQ w+24(FP), R8
	MOVQ dh+32(FP), R9
	MOVQ n+40(FP), DX

axpytwo5_blk16:
	CMPQ DX, $16
	JLT  axpytwo5_tail
	VMOVUPS (SI), Z1
	VMULPS  Z1, Z0, Z1
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	VMOVUPS (R8), Z2
	VMULPS  Z2, Z0, Z2
	VADDPS  (R9), Z2, Z2
	VMOVUPS Z2, (R9)
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	SUBQ $16, DX
	JMP  axpytwo5_blk16

axpytwo5_tail:
	TESTQ DX, DX
	JE    axpytwo5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z1
	VMULPS  Z1, Z0, Z1
	VMOVUPS.Z (DI), K1, Z2
	VADDPS  Z2, Z1, Z1
	VMOVUPS Z1, K1, (DI)
	VMOVUPS.Z (R8), K1, Z3
	VMULPS  Z3, Z0, Z3
	VMOVUPS.Z (R9), K1, Z4
	VADDPS  Z4, Z3, Z3
	VMOVUPS Z3, K1, (R9)

axpytwo5_done:
	VZEROUPPER
	RET

// func scaleAVX512Asm(alpha float32, x *float32, n int64)
TEXT ·scaleAVX512Asm(SB), NOSPLIT, $0-24
	VBROADCASTSS alpha+0(FP), Z0
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), DX

scale5_blk16:
	CMPQ DX, $16
	JLT  scale5_tail
	VMOVUPS (SI), Z1
	VMULPS  Z1, Z0, Z1
	VMOVUPS Z1, (SI)
	ADDQ $64, SI
	SUBQ $16, DX
	JMP  scale5_blk16

scale5_tail:
	TESTQ DX, DX
	JE    scale5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z1
	VMULPS  Z1, Z0, Z1
	VMOVUPS Z1, K1, (SI)

scale5_done:
	VZEROUPPER
	RET

// func addAVX512Asm(x, y *float32, n int64)
TEXT ·addAVX512Asm(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), DX

add5_blk16:
	CMPQ DX, $16
	JLT  add5_tail
	VMOVUPS (SI), Z1
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  add5_blk16

add5_tail:
	TESTQ DX, DX
	JE    add5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z1
	VMOVUPS.Z (DI), K1, Z2
	VADDPS  Z2, Z1, Z1
	VMOVUPS Z1, K1, (DI)

add5_done:
	VZEROUPPER
	RET

// func sumAVX512Asm(x *float32, n int64) float32
TEXT ·sumAVX512Asm(SB), NOSPLIT, $0-20
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX
	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1

sum5_blk32:
	CMPQ DX, $32
	JLT  sum5_blk16
	VADDPS (SI), Z0, Z0
	VADDPS 64(SI), Z1, Z1
	ADDQ $128, SI
	SUBQ $32, DX
	JMP  sum5_blk32

sum5_blk16:
	CMPQ DX, $16
	JLT  sum5_tail
	VADDPS (SI), Z0, Z0
	ADDQ $64, SI
	SUBQ $16, DX
	JMP  sum5_blk16

sum5_tail:
	TESTQ DX, DX
	JE    sum5_reduce
	TAILMASK
	VMOVUPS.Z (SI), K1, Z2
	VADDPS Z2, Z0, Z0

sum5_reduce:
	VADDPS Z1, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+16(FP)
	RET

// func maxAVX512Asm(x *float32, n int64) float32
// Requires n >= 1. Accumulators seed at -Inf; the masked tail merges into a
// -Inf-filled register so dead lanes never win. NaN handling follows VMAXPS
// (differs from the portable tier; callers never pass NaNs).
TEXT ·maxAVX512Asm(SB), NOSPLIT, $0-20
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX
	VBROADCASTSS negInf32<>(SB), Z0

max5_blk16:
	CMPQ DX, $16
	JLT  max5_tail
	VMOVUPS (SI), Z1
	VMAXPS Z1, Z0, Z0
	ADDQ $64, SI
	SUBQ $16, DX
	JMP  max5_blk16

max5_tail:
	TESTQ DX, DX
	JE    max5_reduce
	TAILMASK
	VBROADCASTSS negInf32<>(SB), Z1
	VMOVUPS (SI), K1, Z1
	VMAXPS Z1, Z0, Z0

max5_reduce:
	VEXTRACTF64X4 $1, Z0, Y1
	VMAXPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X1, X0, X0
	VSHUFPS $0xEE, X0, X0, X1
	VMAXPS X1, X0, X0
	VMOVSHDUP X0, X1
	VMAXSS X1, X0, X0
	VZEROUPPER
	MOVSS X0, ret+16(FP)
	RET

// func adamAVX512Asm(w, m, v, grad *float32, n int64, beta1, beta2, omb1, omb2, eps, corr float32, zeroG int64)
// Same schedule as adamAVX2Asm at 16 lanes with a masked tail.
TEXT ·adamAVX512Asm(SB), NOSPLIT, $0-72
	MOVQ w+0(FP), R8
	MOVQ m+8(FP), R9
	MOVQ v+16(FP), R10
	MOVQ grad+24(FP), R11
	MOVQ n+32(FP), DX
	VBROADCASTSS beta1+40(FP), Z0
	VBROADCASTSS beta2+44(FP), Z1
	VBROADCASTSS omb1+48(FP), Z2
	VBROADCASTSS omb2+52(FP), Z3
	VBROADCASTSS eps+56(FP), Z4
	VBROADCASTSS corr+60(FP), Z5
	MOVQ zeroG+64(FP), R12
	VXORPS Z6, Z6, Z6

adam5_blk16:
	CMPQ DX, $16
	JLT  adam5_tail
	VMOVUPS (R11), Z7          // g
	VMOVUPS (R9), Z8           // m
	VMULPS  Z8, Z0, Z8
	VMULPS  Z7, Z2, Z9
	VADDPS  Z9, Z8, Z8         // m'
	VMOVUPS Z8, (R9)
	VMOVUPS (R10), Z10         // v
	VMULPS  Z10, Z1, Z10
	VMULPS  Z7, Z3, Z11
	VMULPS  Z7, Z11, Z11
	VADDPS  Z11, Z10, Z10      // v'
	VMOVUPS Z10, (R10)
	VSQRTPS Z10, Z11
	VADDPS  Z4, Z11, Z11
	VMULPS  Z8, Z5, Z12
	VDIVPS  Z11, Z12, Z12
	VMOVUPS (R8), Z13
	VSUBPS  Z12, Z13, Z13
	VMOVUPS Z13, (R8)
	TESTQ R12, R12
	JE    adam5_nozero
	VMOVUPS Z6, (R11)

adam5_nozero:
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, DX
	JMP  adam5_blk16

adam5_tail:
	TESTQ DX, DX
	JE    adam5_done
	TAILMASK
	VMOVUPS.Z (R11), K1, Z7
	VMOVUPS.Z (R9), K1, Z8
	VMULPS  Z8, Z0, Z8
	VMULPS  Z7, Z2, Z9
	VADDPS  Z9, Z8, Z8
	VMOVUPS Z8, K1, (R9)
	VMOVUPS.Z (R10), K1, Z10
	VMULPS  Z10, Z1, Z10
	VMULPS  Z7, Z3, Z11
	VMULPS  Z7, Z11, Z11
	VADDPS  Z11, Z10, Z10
	VMOVUPS Z10, K1, (R10)
	VSQRTPS Z10, Z11
	VADDPS  Z4, Z11, Z11
	VMULPS  Z8, Z5, Z12
	VDIVPS  Z11, Z12, Z12
	VMOVUPS.Z (R8), K1, Z13
	VSUBPS  Z12, Z13, Z13
	VMOVUPS Z13, K1, (R8)
	TESTQ R12, R12
	JE    adam5_done
	VMOVUPS Z6, K1, (R11)

adam5_done:
	VZEROUPPER
	RET

// func dotBF16F32AVX512Asm(a *bf16.BF16, b *float32, n int64) float32
// a lanes expand bfloat16 -> float32 (zero-extend word, shift left 16 — the
// exact software expansion), then FMA with b.
TEXT ·dotBF16F32AVX512Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Z0, Z0, Z0
	VXORPS Z1, Z1, Z1

bfdot5_blk32:
	CMPQ DX, $32
	JLT  bfdot5_blk16
	VPMOVZXWD (SI), Z4
	VPMOVZXWD 32(SI), Z5
	VPSLLD $16, Z4, Z4
	VPSLLD $16, Z5, Z5
	VFMADD231PS (DI), Z4, Z0
	VFMADD231PS 64(DI), Z5, Z1
	ADDQ $64, SI
	ADDQ $128, DI
	SUBQ $32, DX
	JMP  bfdot5_blk32

bfdot5_blk16:
	CMPQ DX, $16
	JLT  bfdot5_tail
	VPMOVZXWD (SI), Z4
	VPSLLD $16, Z4, Z4
	VFMADD231PS (DI), Z4, Z0
	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  bfdot5_blk16

bfdot5_tail:
	TESTQ DX, DX
	JE    bfdot5_reduce
	TAILMASK
	VPMOVZXWD.Z (SI), K1, Z4
	VPSLLD $16, Z4, Z4
	VMOVUPS.Z (DI), K1, Z5
	VFMADD231PS Z5, Z4, Z0

bfdot5_reduce:
	VADDPS Z1, Z0, Z0
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func dotBF16AVX512Asm(a, b *bf16.BF16, n int64) float32
TEXT ·dotBF16AVX512Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), DX
	VXORPS Z0, Z0, Z0

bfboth5_blk16:
	CMPQ DX, $16
	JLT  bfboth5_tail
	VPMOVZXWD (SI), Z4
	VPSLLD $16, Z4, Z4
	VPMOVZXWD (DI), Z5
	VPSLLD $16, Z5, Z5
	VFMADD231PS Z5, Z4, Z0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $16, DX
	JMP  bfboth5_blk16

bfboth5_tail:
	TESTQ DX, DX
	JE    bfboth5_reduce
	TAILMASK
	VPMOVZXWD.Z (SI), K1, Z4
	VPSLLD $16, Z4, Z4
	VPMOVZXWD.Z (DI), K1, Z5
	VPSLLD $16, Z5, Z5
	VFMADD231PS Z5, Z4, Z0

bfboth5_reduce:
	VEXTRACTF64X4 $1, Z0, Y1
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpyBF16AVX512Asm(alpha float32, x *bf16.BF16, y *float32, n int64)
TEXT ·axpyBF16AVX512Asm(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Z0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), DX

bfaxpy5_blk16:
	CMPQ DX, $16
	JLT  bfaxpy5_tail
	VPMOVZXWD (SI), Z1
	VPSLLD $16, Z1, Z1
	VMULPS  Z1, Z0, Z1
	VADDPS  (DI), Z1, Z1
	VMOVUPS Z1, (DI)
	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $16, DX
	JMP  bfaxpy5_blk16

bfaxpy5_tail:
	TESTQ DX, DX
	JE    bfaxpy5_done
	TAILMASK
	VPMOVZXWD.Z (SI), K1, Z1
	VPSLLD $16, Z1, Z1
	VMULPS  Z1, Z0, Z1
	VMOVUPS.Z (DI), K1, Z2
	VADDPS  Z2, Z1, Z1
	VMOVUPS Z1, K1, (DI)

bfaxpy5_done:
	VZEROUPPER
	RET

// func packBF16AVX512Asm(dst *bf16.BF16, src *float32, n int64)
// Requires AVX512-BF16: VCVTNEPS2BF16 converts 16 float32 to 16 bfloat16
// with round-to-nearest-even (subnormal inputs flush to zero — documented
// divergence from the software converter).
TEXT ·packBF16AVX512Asm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), DX

pack5_blk16:
	CMPQ DX, $16
	JLT  pack5_tail
	VMOVUPS (SI), Z0
	VCVTNEPS2BF16_Z0_Y1
	VMOVDQU Y1, (DI)
	ADDQ $64, SI
	ADDQ $32, DI
	SUBQ $16, DX
	JMP  pack5_blk16

pack5_tail:
	TESTQ DX, DX
	JE    pack5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z0
	VCVTNEPS2BF16_Z0_Y1
	VMOVDQU16 Y1, K1, (DI)

pack5_done:
	VZEROUPPER
	RET

// func roundBF16AVX512Asm(x *float32, n int64)
// Rounds float32 values through bfloat16 in place: convert down with
// VCVTNEPS2BF16, expand back by zero-extend + shift.
TEXT ·roundBF16AVX512Asm(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), DX

round5_blk16:
	CMPQ DX, $16
	JLT  round5_tail
	VMOVUPS (SI), Z0
	VCVTNEPS2BF16_Z0_Y1
	VPMOVZXWD Y1, Z2
	VPSLLD $16, Z2, Z2
	VMOVUPS Z2, (SI)
	ADDQ $64, SI
	SUBQ $16, DX
	JMP  round5_blk16

round5_tail:
	TESTQ DX, DX
	JE    round5_done
	TAILMASK
	VMOVUPS.Z (SI), K1, Z0
	VCVTNEPS2BF16_Z0_Y1
	VPMOVZXWD Y1, Z2
	VPSLLD $16, Z2, Z2
	VMOVUPS Z2, K1, (SI)

round5_done:
	VZEROUPPER
	RET
