package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func buildSample(rng *rand.Rand, dim, nnz, nlabels int) ([]int32, []float32, []int32) {
	seen := map[int32]bool{}
	idx := make([]int32, 0, nnz)
	for len(idx) < nnz {
		i := int32(rng.IntN(dim))
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	// sort ascending
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	val := make([]float32, nnz)
	for i := range val {
		val[i] = float32(rng.NormFloat64())
	}
	labels := make([]int32, nlabels)
	for i := range labels {
		labels[i] = int32(rng.IntN(100))
	}
	return idx, val, labels
}

func TestBuilderBothLayoutsAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var b Builder
	type sample struct {
		idx    []int32
		val    []float32
		labels []int32
	}
	var want []sample
	for i := 0; i < 20; i++ {
		idx, val, labels := buildSample(rng, 500, 1+rng.IntN(10), 1+rng.IntN(3))
		want = append(want, sample{idx, val, labels})
		b.Add(idx, val, labels)
	}
	if b.Len() != 20 {
		t.Fatalf("builder Len = %d, want 20", b.Len())
	}

	csr, err := b.CSR()
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild for the fragmented copy (CSR took ownership of the buffers).
	var b2 Builder
	for _, s := range want {
		b2.Add(s.idx, s.val, s.labels)
	}
	frag, err := b2.Fragmented()
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []Batch{csr, frag} {
		if batch.Len() != len(want) {
			t.Fatalf("batch Len = %d, want %d", batch.Len(), len(want))
		}
		totalNNZ := 0
		for i, s := range want {
			v := batch.Sample(i)
			if len(v.Indices) != len(s.idx) {
				t.Fatalf("sample %d nnz = %d, want %d", i, len(v.Indices), len(s.idx))
			}
			for k := range s.idx {
				if v.Indices[k] != s.idx[k] || v.Values[k] != s.val[k] {
					t.Fatalf("sample %d entry %d mismatch", i, k)
				}
			}
			lab := batch.Labels(i)
			if len(lab) != len(s.labels) {
				t.Fatalf("sample %d labels = %d, want %d", i, len(lab), len(s.labels))
			}
			for k := range lab {
				if lab[k] != s.labels[k] {
					t.Fatalf("sample %d label %d mismatch", i, k)
				}
			}
			totalNNZ += len(s.idx)
		}
		if batch.NNZ() != totalNNZ {
			t.Errorf("NNZ = %d, want %d", batch.NNZ(), totalNNZ)
		}
	}
}

func TestCSRStorageIsContiguous(t *testing.T) {
	var b Builder
	b.Add([]int32{1, 5}, []float32{1, 2}, []int32{0})
	b.Add([]int32{0, 3, 7}, []float32{3, 4, 5}, []int32{1, 2})
	csr, err := b.CSR()
	if err != nil {
		t.Fatal(err)
	}
	s0 := csr.Sample(0)
	s1 := csr.Sample(1)
	// Consecutive samples must be adjacent in the same backing array:
	// the end of sample 0's values is the start of sample 1's values.
	if &s0.Values[:cap(s0.Values)][0] != &csr.values[0] {
		t.Error("sample 0 does not alias the shared backing buffer")
	}
	if &s1.Values[0] != &csr.values[2] {
		t.Error("sample 1 is not adjacent to sample 0 in backing storage")
	}
}

func TestBuilderEmptySample(t *testing.T) {
	var b Builder
	b.Add(nil, nil, []int32{4})
	b.Add([]int32{2}, []float32{1}, nil)
	csr, err := b.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if csr.Sample(0).NNZ() != 0 {
		t.Error("empty sample should have zero nnz")
	}
	if len(csr.Labels(1)) != 0 {
		t.Error("missing labels should be empty")
	}
}

func TestEmptyBatchError(t *testing.T) {
	var b Builder
	if _, err := b.CSR(); err != ErrEmptyBatch {
		t.Errorf("CSR on empty builder: err = %v, want ErrEmptyBatch", err)
	}
	if _, err := b.Fragmented(); err != ErrEmptyBatch {
		t.Errorf("Fragmented on empty builder: err = %v, want ErrEmptyBatch", err)
	}
}

func TestBuilderAddMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched slices did not panic")
		}
	}()
	var b Builder
	b.Add([]int32{1, 2}, []float32{1}, nil)
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	b.Add([]int32{1}, []float32{1}, nil)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("after Reset Len = %d", b.Len())
	}
	b.Add([]int32{2, 3}, []float32{4, 5}, []int32{9})
	csr, err := b.CSR()
	if err != nil {
		t.Fatal(err)
	}
	if csr.Len() != 1 || csr.Sample(0).Values[0] != 4 {
		t.Error("builder unusable after Reset")
	}
}

func TestBuildLayoutDispatch(t *testing.T) {
	var b Builder
	b.Add([]int32{0}, []float32{1}, nil)
	if batch, err := b.Build(Coalesced); err != nil || batch.Len() != 1 {
		t.Errorf("Build(Coalesced) = %v, %v", batch, err)
	}
	var b2 Builder
	b2.Add([]int32{0}, []float32{1}, nil)
	if batch, err := b2.Build(Fragmented); err != nil || batch.Len() != 1 {
		t.Errorf("Build(Fragmented) = %v, %v", batch, err)
	}
	var b3 Builder
	b3.Add([]int32{0}, []float32{1}, nil)
	if _, err := b3.Build(Layout(42)); err == nil {
		t.Error("Build with unknown layout should error")
	}
}

func TestLayoutString(t *testing.T) {
	if Coalesced.String() != "coalesced" || Fragmented.String() != "fragmented" || Layout(7).String() != "unknown" {
		t.Error("Layout.String values wrong")
	}
}

func TestVectorValidate(t *testing.T) {
	ok := Vector{Indices: []int32{1, 4, 9}, Values: []float32{1, 2, 3}}
	if err := ok.Validate(10); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	cases := map[string]Vector{
		"length mismatch": {Indices: []int32{1}, Values: []float32{1, 2}},
		"out of range":    {Indices: []int32{10}, Values: []float32{1}},
		"negative":        {Indices: []int32{-1}, Values: []float32{1}},
		"unsorted":        {Indices: []int32{4, 2}, Values: []float32{1, 2}},
		"duplicate":       {Indices: []int32{2, 2}, Values: []float32{1, 2}},
	}
	for name, v := range cases {
		if err := v.Validate(10); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// dim < 0 skips range check
	big := Vector{Indices: []int32{1000000}, Values: []float32{1}}
	if err := big.Validate(-1); err != nil {
		t.Errorf("negative dim should skip range check: %v", err)
	}
}

func TestVectorDotAndDense(t *testing.T) {
	v := Vector{Indices: []int32{1, 3}, Values: []float32{2, 5}}
	dense := []float32{10, 20, 30, 40}
	if got := v.Dot(dense); got != 2*20+5*40 {
		t.Errorf("Dot = %g", got)
	}
	d := v.Dense(4)
	want := []float32{0, 2, 0, 5}
	for i := range d {
		if d[i] != want[i] {
			t.Errorf("Dense[%d] = %g, want %g", i, d[i], want[i])
		}
	}
}

func TestValidateBatch(t *testing.T) {
	var b Builder
	b.Add([]int32{1, 2}, []float32{1, 1}, nil)
	b.Add([]int32{99}, []float32{1}, nil)
	csr, _ := b.CSR()
	if err := Validate(csr, 100); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := Validate(csr, 50); err == nil {
		t.Error("out-of-dim batch accepted")
	}
}

func TestPropertyLayoutEquivalence(t *testing.T) {
	// Any sequence of samples yields identical views in both layouts.
	f := func(seed uint64, nSamples uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xdead))
		n := int(nSamples%16) + 1
		var b1, b2 Builder
		for i := 0; i < n; i++ {
			idx, val, labels := buildSample(rng, 200, 1+rng.IntN(8), rng.IntN(4))
			b1.Add(idx, val, labels)
			b2.Add(idx, val, labels)
		}
		csr, err1 := b1.CSR()
		frag, err2 := b2.Fragmented()
		if err1 != nil || err2 != nil {
			return false
		}
		if csr.Len() != frag.Len() || csr.NNZ() != frag.NNZ() {
			return false
		}
		for i := 0; i < csr.Len(); i++ {
			a, c := csr.Sample(i), frag.Sample(i)
			if len(a.Indices) != len(c.Indices) {
				return false
			}
			for k := range a.Indices {
				if a.Indices[k] != c.Indices[k] || a.Values[k] != c.Values[k] {
					return false
				}
			}
			la, lc := csr.Labels(i), frag.Labels(i)
			if len(la) != len(lc) {
				return false
			}
			for k := range la {
				if la[k] != lc[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
