// Package sparse provides the sparse-sample containers used throughout the
// system, in the two memory layouts whose contrast is the heart of the
// paper's §4.1 "Removing Data Memory Fragmentation":
//
//   - CSRBatch: the optimized layout — all non-zero indices and values of a
//     batch live in one long contiguous buffer, with an offsets vector
//     indexing the start of each sample. Hundreds of HOGWILD threads walking
//     one batch then share cache lines and prefetch for each other.
//   - FragBatch: the naive layout — every sample owns separately allocated
//     index/value slices, scattered across the heap, which is what the
//     original SLIDE implementation did.
//
// Both satisfy the Batch interface, so every consumer (trainer, baseline,
// hasher) is layout-agnostic and the ablation harness can swap layouts with
// everything else held fixed.
package sparse

import (
	"errors"
	"fmt"
)

// Vector is a read-only view of one sparse sample: parallel slices of
// feature indices and their values. Indices are sorted ascending and unique.
type Vector struct {
	Indices []int32
	Values  []float32
}

// NNZ returns the number of stored non-zeros.
func (v Vector) NNZ() int { return len(v.Indices) }

// Dot returns the inner product of the sparse vector with a dense vector.
// Out-of-range indices panic (caller dimension bug).
func (v Vector) Dot(dense []float32) float32 {
	var s float32
	for k, idx := range v.Indices {
		s += v.Values[k] * dense[idx]
	}
	return s
}

// Dense scatters the vector into a fresh dense slice of the given dimension.
func (v Vector) Dense(dim int) []float32 {
	out := make([]float32, dim)
	for k, idx := range v.Indices {
		out[idx] = v.Values[k]
	}
	return out
}

// Validate checks that indices are sorted, unique and within [0, dim).
// A negative dim skips the range check.
func (v Vector) Validate(dim int) error {
	if len(v.Indices) != len(v.Values) {
		return fmt.Errorf("sparse: %d indices but %d values", len(v.Indices), len(v.Values))
	}
	for k, idx := range v.Indices {
		if dim >= 0 && (idx < 0 || int(idx) >= dim) {
			return fmt.Errorf("sparse: index %d out of range [0,%d)", idx, dim)
		}
		if k > 0 && idx <= v.Indices[k-1] {
			return fmt.Errorf("sparse: indices not strictly ascending at position %d (%d after %d)",
				k, idx, v.Indices[k-1])
		}
	}
	return nil
}

// Batch is a read-only collection of sparse samples with multi-label targets.
type Batch interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns a view of sample i. The returned slices alias the
	// batch's storage and must not be mutated.
	Sample(i int) Vector
	// Labels returns the label ids of sample i (aliases storage).
	Labels(i int) []int32
	// NNZ returns the total number of non-zeros across all samples.
	NNZ() int
}

// ErrEmptyBatch is returned by builders asked to finalize zero samples.
var ErrEmptyBatch = errors.New("sparse: empty batch")

// CSRBatch is the coalesced layout (§4.1): one contiguous indices buffer,
// one contiguous values buffer, one contiguous labels buffer, each with an
// offsets vector.
type CSRBatch struct {
	indices      []int32
	values       []float32
	offsets      []int64 // len = n+1
	labels       []int32
	labelOffsets []int64 // len = n+1
}

// Len implements Batch.
func (b *CSRBatch) Len() int { return len(b.offsets) - 1 }

// Sample implements Batch.
func (b *CSRBatch) Sample(i int) Vector {
	lo, hi := b.offsets[i], b.offsets[i+1]
	return Vector{Indices: b.indices[lo:hi:hi], Values: b.values[lo:hi:hi]}
}

// Labels implements Batch.
func (b *CSRBatch) Labels(i int) []int32 {
	lo, hi := b.labelOffsets[i], b.labelOffsets[i+1]
	return b.labels[lo:hi:hi]
}

// NNZ implements Batch.
func (b *CSRBatch) NNZ() int { return len(b.indices) }

// FragBatch is the fragmented layout: per-sample heap allocations, the data
// layout of the original (naive) SLIDE implementation.
type FragBatch struct {
	samples []Vector
	labels  [][]int32
	nnz     int
}

// Len implements Batch.
func (b *FragBatch) Len() int { return len(b.samples) }

// Sample implements Batch.
func (b *FragBatch) Sample(i int) Vector { return b.samples[i] }

// Labels implements Batch.
func (b *FragBatch) Labels(i int) []int32 { return b.labels[i] }

// NNZ implements Batch.
func (b *FragBatch) NNZ() int { return b.nnz }

// Layout names a batch memory layout.
type Layout int

const (
	// Coalesced selects CSRBatch (the paper's optimized layout).
	Coalesced Layout = iota
	// Fragmented selects FragBatch (the naive layout).
	Fragmented
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case Coalesced:
		return "coalesced"
	case Fragmented:
		return "fragmented"
	default:
		return "unknown"
	}
}

// Builder accumulates samples and finalizes them into either layout.
// The zero value is ready to use.
type Builder struct {
	indices      []int32
	values       []float32
	offsets      []int64
	labels       []int32
	labelOffsets []int64
}

// Add appends one sample. The slices are copied; the caller may reuse them.
// Indices must be sorted ascending (validated lazily via Vector.Validate by
// callers that parse untrusted input).
func (b *Builder) Add(indices []int32, values []float32, labels []int32) {
	if len(indices) != len(values) {
		panic("sparse: Builder.Add index/value length mismatch")
	}
	if b.offsets == nil {
		b.offsets = append(b.offsets, 0)
		b.labelOffsets = append(b.labelOffsets, 0)
	}
	b.indices = append(b.indices, indices...)
	b.values = append(b.values, values...)
	b.offsets = append(b.offsets, int64(len(b.indices)))
	b.labels = append(b.labels, labels...)
	b.labelOffsets = append(b.labelOffsets, int64(len(b.labels)))
}

// Len returns the number of samples added so far.
func (b *Builder) Len() int {
	if b.offsets == nil {
		return 0
	}
	return len(b.offsets) - 1
}

// Reset clears the builder for reuse, keeping capacity.
func (b *Builder) Reset() {
	b.indices = b.indices[:0]
	b.values = b.values[:0]
	b.offsets = b.offsets[:0]
	b.labels = b.labels[:0]
	b.labelOffsets = b.labelOffsets[:0]
	b.offsets = nil
	b.labelOffsets = nil
}

// CSR finalizes into the coalesced layout. The builder's backing buffers are
// handed to the batch; call Reset before reusing the builder.
func (b *Builder) CSR() (*CSRBatch, error) {
	if b.Len() == 0 {
		return nil, ErrEmptyBatch
	}
	return &CSRBatch{
		indices:      b.indices,
		values:       b.values,
		offsets:      b.offsets,
		labels:       b.labels,
		labelOffsets: b.labelOffsets,
	}, nil
}

// Fragmented finalizes into the fragmented layout, making one fresh
// allocation per sample (deliberately reproducing the naive heap behaviour).
func (b *Builder) Fragmented() (*FragBatch, error) {
	n := b.Len()
	if n == 0 {
		return nil, ErrEmptyBatch
	}
	fb := &FragBatch{
		samples: make([]Vector, n),
		labels:  make([][]int32, n),
		nnz:     len(b.indices),
	}
	for i := 0; i < n; i++ {
		lo, hi := b.offsets[i], b.offsets[i+1]
		idx := make([]int32, hi-lo)
		val := make([]float32, hi-lo)
		copy(idx, b.indices[lo:hi])
		copy(val, b.values[lo:hi])
		fb.samples[i] = Vector{Indices: idx, Values: val}
		llo, lhi := b.labelOffsets[i], b.labelOffsets[i+1]
		lab := make([]int32, lhi-llo)
		copy(lab, b.labels[llo:lhi])
		fb.labels[i] = lab
	}
	return fb, nil
}

// Build finalizes into the requested layout.
func (b *Builder) Build(layout Layout) (Batch, error) {
	switch layout {
	case Coalesced:
		return b.CSR()
	case Fragmented:
		return b.Fragmented()
	default:
		return nil, fmt.Errorf("sparse: unknown layout %d", layout)
	}
}

// Validate checks every sample of a batch against the feature dimension.
func Validate(b Batch, dim int) error {
	for i := 0; i < b.Len(); i++ {
		if err := b.Sample(i).Validate(dim); err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
	}
	return nil
}
