// Package bf16 implements the Brain Floating Point (bfloat16) format in
// software.
//
// BF16 keeps float32's 8-bit exponent and truncates the mantissa from 23 to
// 7 bits (Kalamkar et al. 2019). The paper's CPX target executes BF16
// natively via AVX512-BF16; this package is the software substitute used by
// the quantized training modes in §4.4 of the paper: it preserves the memory
// footprint (half of FP32) and the numerical behaviour (rounding) of the
// hardware format, so accuracy-impact experiments transfer directly.
//
// Two rounding modes are provided: truncation (what naive hardware casts do)
// and round-to-nearest-even (what AVX512-BF16 VCVTNEPS2BF16 does). All
// conversion helpers in this package use round-to-nearest-even unless the
// name says otherwise.
package bf16

import "math"

// BF16 is a bfloat16 value stored in the upper 16 bits layout of a float32:
// 1 sign bit, 8 exponent bits, 7 mantissa bits.
type BF16 uint16

// FromFloat32 converts x to BF16 with round-to-nearest-even.
//
// NaN payloads are canonicalized to a quiet NaN so that a NaN never rounds
// into an infinity (the pure "add 0x7FFF+lsb" trick would corrupt NaNs whose
// low mantissa bits carry the payload).
func FromFloat32(x float32) BF16 {
	bits := math.Float32bits(x)
	if isNaN32(bits) {
		return BF16(bits>>16 | 0x0040) // quiet the NaN, keep sign+exponent
	}
	// Round to nearest even: add half of the dropped range, plus the LSB of
	// the kept mantissa to break ties toward even.
	lsb := (bits >> 16) & 1
	bits += 0x7FFF + lsb
	return BF16(bits >> 16)
}

// Truncate converts x to BF16 by dropping the low mantissa bits without
// rounding. Mode used only by tests and by the rounding-error ablation.
func Truncate(x float32) BF16 {
	bits := math.Float32bits(x)
	if isNaN32(bits) {
		return BF16(bits>>16 | 0x0040)
	}
	return BF16(bits >> 16)
}

// Float32 converts b back to float32. The conversion is exact: every BF16
// value is representable as a float32.
func (b BF16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// Bits returns the raw 16-bit representation.
func (b BF16) Bits() uint16 { return uint16(b) }

// FromBits builds a BF16 from raw bits.
func FromBits(u uint16) BF16 { return BF16(u) }

// IsNaN reports whether b is a NaN.
func (b BF16) IsNaN() bool {
	return b&0x7F80 == 0x7F80 && b&0x007F != 0
}

// IsInf reports whether b is an infinity of the given sign: +1 positive,
// -1 negative, 0 either.
func (b BF16) IsInf(sign int) bool {
	if b&0x7FFF != 0x7F80 {
		return false
	}
	neg := b&0x8000 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

func isNaN32(bits uint32) bool {
	return bits&0x7F800000 == 0x7F800000 && bits&0x007FFFFF != 0
}

// Common constants.
var (
	// PositiveInfinity is +Inf in bfloat16.
	PositiveInfinity = BF16(0x7F80)
	// NegativeInfinity is -Inf in bfloat16.
	NegativeInfinity = BF16(0xFF80)
	// MaxValue is the largest finite bfloat16 (about 3.39e38).
	MaxValue = BF16(0x7F7F)
	// SmallestNormal is the smallest positive normal bfloat16 (about 1.18e-38).
	SmallestNormal = BF16(0x0080)
	// Epsilon is the gap between 1.0 and the next representable value (2^-7).
	Epsilon = BF16(0x3C00)
)

// FromSlice converts a float32 slice into a freshly allocated BF16 slice.
func FromSlice(src []float32) []BF16 {
	dst := make([]BF16, len(src))
	Convert(dst, src)
	return dst
}

// Convert converts src into dst with round-to-nearest-even.
// It panics if the slices have different lengths.
func Convert(dst []BF16, src []float32) {
	if len(dst) != len(src) {
		panic("bf16: Convert length mismatch")
	}
	for i, x := range src {
		dst[i] = FromFloat32(x)
	}
}

// ToSlice converts a BF16 slice into a freshly allocated float32 slice.
func ToSlice(src []BF16) []float32 {
	dst := make([]float32, len(src))
	Expand(dst, src)
	return dst
}

// Expand converts src into dst. It panics on length mismatch.
func Expand(dst []float32, src []BF16) {
	if len(dst) != len(src) {
		panic("bf16: Expand length mismatch")
	}
	for i, b := range src {
		dst[i] = b.Float32()
	}
}

// RoundFloat32 rounds x through bfloat16 and back. It is the quantization
// applied by "BF16 activations" mode to values kept in float32 storage.
func RoundFloat32(x float32) float32 {
	return FromFloat32(x).Float32()
}

// RoundSlice quantizes every element of x in place through bfloat16.
func RoundSlice(x []float32) {
	for i := range x {
		x[i] = RoundFloat32(x[i])
	}
}
