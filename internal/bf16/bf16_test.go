package bf16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloat32Exact(t *testing.T) {
	// Values exactly representable in bfloat16 must round-trip bit-exact.
	cases := []float32{0, 1, -1, 2, 0.5, -0.5, 1.5, 256, -1024, 0.0078125}
	for _, x := range cases {
		got := FromFloat32(x).Float32()
		if got != x {
			t.Errorf("FromFloat32(%g).Float32() = %g, want exact", x, got)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-8 is exactly halfway between 1.0 and 1+2^-7; RNE keeps the even
	// mantissa (1.0).
	half := float32(1.0 + 1.0/256.0)
	if got := FromFloat32(half).Float32(); got != 1.0 {
		t.Errorf("halfway 1+2^-8 rounded to %g, want 1.0 (round to even)", got)
	}
	// 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; RNE picks 1+2^-6
	// (even mantissa 0b10).
	half2 := float32(1.0 + 3.0/256.0)
	want := float32(1.0 + 2.0/128.0)
	if got := FromFloat32(half2).Float32(); got != want {
		t.Errorf("halfway 1+3*2^-8 rounded to %g, want %g", got, want)
	}
	// Anything past the halfway point rounds up.
	up := float32(1.0 + 1.0/256.0 + 1.0/1024.0)
	wantUp := float32(1.0 + 1.0/128.0)
	if got := FromFloat32(up).Float32(); got != wantUp {
		t.Errorf("above-half rounded to %g, want %g", got, wantUp)
	}
}

func TestTruncateVsRound(t *testing.T) {
	x := float32(1.0 + 1.9/128.0) // between representables, closer to upper
	tr := Truncate(x).Float32()
	rn := FromFloat32(x).Float32()
	if tr >= rn {
		t.Errorf("Truncate(%g)=%g should be below round-nearest %g", x, tr, rn)
	}
}

func TestSpecialValues(t *testing.T) {
	if !FromFloat32(float32(math.Inf(1))).IsInf(1) {
		t.Error("+Inf did not convert to +Inf")
	}
	if !FromFloat32(float32(math.Inf(-1))).IsInf(-1) {
		t.Error("-Inf did not convert to -Inf")
	}
	if !FromFloat32(float32(math.NaN())).IsNaN() {
		t.Error("NaN did not convert to NaN")
	}
	if PositiveInfinity.IsNaN() || !PositiveInfinity.IsInf(0) {
		t.Error("PositiveInfinity misclassified")
	}
	// Rounding must never turn a finite value whose magnitude is below the
	// BF16 max into an infinity... but values between MaxValue and +Inf's
	// threshold legitimately round up. Check MaxValue itself survives.
	if got := MaxValue.Float32(); FromFloat32(got) != MaxValue {
		t.Errorf("MaxValue round trip failed: %v", FromFloat32(got))
	}
	// Negative zero keeps its sign.
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if nz.Bits() != 0x8000 {
		t.Errorf("-0 bits = %#x, want 0x8000", nz.Bits())
	}
}

func TestNaNNeverBecomesInf(t *testing.T) {
	// A NaN with only low mantissa bits set would be corrupted to Inf by a
	// naive round-up; the implementation must quiet it instead.
	sneaky := math.Float32frombits(0x7F800001)
	b := FromFloat32(sneaky)
	if !b.IsNaN() {
		t.Errorf("NaN with low payload converted to %#x (not NaN)", b.Bits())
	}
}

func TestRoundTripAllBF16Values(t *testing.T) {
	// Every finite BF16 value must be a fixed point of the f32->bf16->f32
	// round trip. Exhaustive over all 65536 patterns.
	for u := 0; u < 1<<16; u++ {
		b := FromBits(uint16(u))
		if b.IsNaN() {
			continue
		}
		f := b.Float32()
		back := FromFloat32(f)
		if back != b {
			t.Fatalf("bits %#04x -> %g -> %#04x, not a fixed point", u, f, back.Bits())
		}
	}
}

func TestPropertyRelativeError(t *testing.T) {
	// For normal-range inputs the relative rounding error is at most 2^-8.
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if ax < float64(SmallestNormal.Float32()) || ax > float64(MaxValue.Float32()) {
			return true // subnormal/overflow range excluded from this bound
		}
		y := FromFloat32(x).Float32()
		rel := math.Abs(float64(y)-float64(x)) / ax
		return rel <= 1.0/256.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMonotone(t *testing.T) {
	// Rounding is monotone: x <= y implies bf16(x) <= bf16(y).
	f := func(x, y float32) bool {
		if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return FromFloat32(x).Float32() <= FromFloat32(y).Float32()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	src := []float32{1, 2.5, -3.25, 1e20, -1e-20, 0}
	bs := FromSlice(src)
	back := ToSlice(bs)
	if len(back) != len(src) {
		t.Fatalf("length changed: %d -> %d", len(src), len(back))
	}
	for i := range src {
		want := FromFloat32(src[i]).Float32()
		if back[i] != want {
			t.Errorf("slice round trip [%d] = %g, want %g", i, back[i], want)
		}
	}

	// RoundSlice is idempotent.
	x := append([]float32(nil), src...)
	RoundSlice(x)
	once := append([]float32(nil), x...)
	RoundSlice(x)
	for i := range x {
		if x[i] != once[i] {
			t.Errorf("RoundSlice not idempotent at %d: %g vs %g", i, x[i], once[i])
		}
	}
}

func TestConvertLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Convert with mismatched lengths did not panic")
		}
	}()
	Convert(make([]BF16, 2), make([]float32, 3))
}

func TestExpandLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Expand with mismatched lengths did not panic")
		}
	}()
	Expand(make([]float32, 1), make([]BF16, 2))
}

func TestEpsilon(t *testing.T) {
	// 1 + eps must be the next representable value after 1.
	one := FromFloat32(1)
	next := FromBits(one.Bits() + 1)
	if diff := next.Float32() - 1.0; diff != Epsilon.Float32() {
		t.Errorf("next-after-1 gap = %g, want Epsilon = %g", diff, Epsilon.Float32())
	}
}
