// Package faultinject is a deterministic, scenario-scripted fault injector
// for the train-and-serve stack. Production code marks failure-relevant
// boundaries with named injection points (checkpoint IO, data-source reads,
// snapshot publication); a chaos harness arms a Plan scripting which calls
// at those points fail, stall, or tear, and the same script always injects
// the same faults at the same calls — so a chaos run is as reproducible as
// any other seeded test.
//
// When no plan is armed (the production default) every hook is a single
// atomic pointer load returning nil: the instrumentation is a no-op, safe
// to leave in hot-ish paths like the per-batch source read.
//
// Scenario scripts are compact strings, one rule per clause:
//
//	point@call=action[:param]
//
// separated by ';'. call is the 1-based invocation of the point ("3" = the
// third time the program reaches it; "every:N" = every Nth; "p0.1" = each
// call independently with probability 0.1, decided by a counter-based hash
// of the plan seed — the same seed always faults the same calls, even
// across concurrent callers, because the decision depends only on the
// call's index, never on scheduling). Actions:
//
//	err            the call returns an injected error
//	stall:<dur>    the call sleeps <dur>, then proceeds normally
//	cut:<bytes>    (writer points) the write stream is severed after <bytes>
//	               more bytes — a torn write, as if the process was killed
//	               mid-write
//	flip:<n>       (writer points) the byte at stream offset <n> is XOR'd
//	               with 0xFF and the stream otherwise delivered intact —
//	               silent single-byte corruption, the fault checksums exist
//	               to catch
//	nan:<row>      (poison points) plant a NaN in parameter row <row> just
//	               before the call proceeds — numeric corruption the health
//	               guards exist to catch
//	inf:<row>      (poison points) plant a +Inf in parameter row <row>
//	gradscale:<f>  (poison points) scale the effective learning rate of one
//	               optimizer step by <f> — an exploding-step drill for the
//	               loss-spike detector
//
// Example — fail the second checkpoint mid-write after 512 bytes and stall
// every third data read for 5ms:
//
//	checkpoint.write@2=cut:512;datasource.read@every:3=stall:5ms
//
// Injected errors wrap ErrInjected so recovery code can distinguish a
// scripted fault from a real one (and, e.g., skip cleanup to simulate a
// crash that never got the chance).
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Conventional point names. Points are plain strings — these constants just
// keep the call sites and scenario scripts spelling them identically.
const (
	// PointCheckpointWrite is hit by every checkpoint save; cut rules tear
	// the write stream partway through the temp file.
	PointCheckpointWrite = "checkpoint.write"
	// PointCheckpointRename is hit between the temp-file write and the
	// atomic rename. An err rule simulates a crash in that window: the
	// rename never happens and the orphaned temp file is left behind.
	PointCheckpointRename = "checkpoint.rename"
	// PointSourceRead is hit before every data-source batch read.
	PointSourceRead = "datasource.read"
	// PointSnapshotPublish is hit on every snapshot publication into the
	// serving pipeline (stall rules only — Publish cannot fail).
	PointSnapshotPublish = "snapshot.publish"
	// PointReplicateSend is hit when the replication hub writes a base or
	// delta message onto an HTTP response; cut rules tear the stream
	// mid-message, flip rules corrupt a byte in flight.
	PointReplicateSend = "replicate.send"
	// PointReplicateRecv is hit before a replica client issues a fetch on
	// the replication stream (err and stall rules — a flaky or slow
	// subscriber).
	PointReplicateRecv = "replicate.recv"
	// PointShardBarrier is hit by every sharded-training worker as it
	// arrives at a phase barrier (stall rules only — barriers cannot fail).
	// A stall makes one worker arrive late, proving the barrier protocol
	// neither deadlocks nor lets a merge start on partial shard results.
	PointShardBarrier = "shard.barrier"
	// PointTrainBatch is polled (via Poison) at the top of every optimizer
	// step. nan/inf rules plant a non-finite value in the model's hidden
	// bias, gradscale rules scale that one step's learning rate — the
	// numeric-corruption drills for the detect → rollback loop.
	PointTrainBatch = "train.batch"
)

// ErrInjected is the sentinel every injected fault wraps.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is the error an err or cut rule injects.
type Fault struct {
	// Point is the injection point that fired; Call its 1-based invocation.
	Point string
	Call  uint64
	// Action is the fired rule's action ("err" or "cut").
	Action string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s at %s call %d", f.Action, f.Point, f.Call)
}

// Unwrap makes errors.Is(err, ErrInjected) true for every injected fault.
func (f *Fault) Unwrap() error { return ErrInjected }

// rule is one parsed scenario clause.
type rule struct {
	point string
	call  uint64  // fire on this 1-based call…
	every uint64  // …or on every Nth call…
	prob  float64 // …or per-call with this probability (seeded, counter-hashed)
	act   string  // "err", "stall", "cut", "flip", "nan", "inf", "gradscale"
	dur   time.Duration
	bytes int64
	fval  float64 // gradscale factor
}

// matches reports whether the rule fires on the given 1-based call. The
// probabilistic trigger hashes (seed, point, call) so the decision is a pure
// function of the call index: concurrent interleavings cannot change which
// calls fault, only which goroutine observes them.
func (r *rule) matches(call, seed uint64) bool {
	switch {
	case r.every > 0:
		return call%r.every == 0
	case r.prob > 0:
		h := splitmix64(seed ^ splitmix64(hashString(r.point)^call))
		return float64(h>>11)/(1<<53) < r.prob
	default:
		return call == r.call
	}
}

// splitmix64 is the standard 64-bit finalizer-style mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Plan is a parsed, armed-able scenario: rules grouped by point, plus
// per-point call counters. A Plan is safe for concurrent use once armed.
type Plan struct {
	seed   uint64
	rules  map[string][]*rule
	counts map[string]*atomic.Uint64

	mu    sync.Mutex
	fired []string
}

// Parse compiles a scenario script (see the package comment for the
// grammar). seed drives the probabilistic triggers; exact-call and every-N
// triggers ignore it. An empty script yields a plan that never fires.
func Parse(spec string, seed uint64) (*Plan, error) {
	p := &Plan{
		seed:   seed,
		rules:  make(map[string][]*rule),
		counts: make(map[string]*atomic.Uint64),
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		p.rules[r.point] = append(p.rules[r.point], r)
		if p.counts[r.point] == nil {
			p.counts[r.point] = &atomic.Uint64{}
		}
	}
	return p, nil
}

func parseClause(clause string) (*rule, error) {
	at := strings.Index(clause, "@")
	eq := strings.Index(clause, "=")
	if at < 1 || eq < at+2 || eq == len(clause)-1 {
		return nil, fmt.Errorf("faultinject: clause %q is not point@call=action[:param]", clause)
	}
	r := &rule{point: clause[:at]}
	callSpec := clause[at+1 : eq]
	switch {
	case strings.HasPrefix(callSpec, "every:"):
		v, err := strconv.ParseUint(callSpec[len("every:"):], 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("faultinject: bad every-interval %q in %q", callSpec, clause)
		}
		r.every = v
	case strings.HasPrefix(callSpec, "p"):
		v, err := strconv.ParseFloat(callSpec[1:], 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("faultinject: bad probability %q in %q ((0,1])", callSpec, clause)
		}
		r.prob = v
	default:
		v, err := strconv.ParseUint(callSpec, 10, 64)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("faultinject: bad call index %q in %q (1-based)", callSpec, clause)
		}
		r.call = v
	}
	action, param, hasParam := strings.Cut(clause[eq+1:], ":")
	switch action {
	case "err":
		if hasParam {
			return nil, fmt.Errorf("faultinject: err takes no parameter in %q", clause)
		}
	case "stall":
		d, err := time.ParseDuration(param)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultinject: bad stall duration %q in %q", param, clause)
		}
		r.dur = d
	case "cut":
		n, err := strconv.ParseInt(param, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faultinject: bad cut byte count %q in %q", param, clause)
		}
		r.bytes = n
	case "flip":
		n, err := strconv.ParseInt(param, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faultinject: bad flip byte offset %q in %q", param, clause)
		}
		r.bytes = n
	case "nan", "inf":
		if hasParam {
			n, err := strconv.ParseInt(param, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: bad %s row index %q in %q", action, param, clause)
			}
			r.bytes = n
		}
	case "gradscale":
		f, err := strconv.ParseFloat(param, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("faultinject: bad gradscale factor %q in %q", param, clause)
		}
		r.fval = f
	default:
		return nil, fmt.Errorf("faultinject: unknown action %q in %q (err|stall|cut|flip|nan|inf|gradscale)", action, clause)
	}
	r.act = action
	return r, nil
}

// active is the armed plan; nil (the default) disables every hook.
var active atomic.Pointer[Plan]

// Arm makes p the active plan process-wide. Arm(nil) is Disarm.
func Arm(p *Plan) { active.Store(p) }

// Disarm deactivates injection; every hook returns to its no-op fast path.
func Disarm() { active.Store(nil) }

// Fired returns human-readable descriptions of every fault the plan has
// injected so far, in firing order — chaos harnesses log and assert on it.
func (p *Plan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fired...)
}

// record notes a fired rule.
func (p *Plan) record(r *rule, call uint64) {
	p.mu.Lock()
	p.fired = append(p.fired, fmt.Sprintf("%s@%d=%s", r.point, call, r.act))
	p.mu.Unlock()
}

// hit counts one call at a point and returns the rule that fires (and the
// call index it fired on), if any. Stall rules sleep here and return nil
// (the call proceeds).
func (p *Plan) hit(point string) (*rule, uint64) {
	c := p.counts[point]
	if c == nil {
		return nil, 0 // no rules script this point
	}
	call := c.Add(1)
	for _, r := range p.rules[point] {
		if !r.matches(call, p.seed) {
			continue
		}
		p.record(r, call)
		if r.act == "stall" {
			time.Sleep(r.dur)
			return nil, 0
		}
		return r, call
	}
	return nil, 0
}

// Hit marks one invocation of a point. It returns an injected error when an
// err rule fires, after sleeping when a stall rule fires, and nil otherwise
// (including always when no plan is armed). cut and flip rules do not fire
// here — they need a write stream (see Writer) — and the numeric-poison
// rules do not either (they need a model; see Poison).
func Hit(point string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, call := p.hit(point)
	if r == nil || r.act != "err" {
		return nil
	}
	return &Fault{Point: point, Call: call, Action: r.act}
}

// Poison polls a poison point: when a nan/inf/gradscale rule fires for this
// invocation it returns the action, the target row (nan/inf), and the scale
// factor (gradscale). With no armed plan, no firing rule, or a non-poison
// rule, ok is false and the call proceeds untouched. One-shot rules stay
// consumed after firing — a rollback replay of the same steps re-polls the
// point at ever-higher call indices and runs clean, which is exactly the
// transient-fault shape the self-healing loop is drilled against.
func Poison(point string) (action string, row int, factor float64, ok bool) {
	p := active.Load()
	if p == nil {
		return "", 0, 0, false
	}
	r, _ := p.hit(point)
	if r == nil {
		return "", 0, 0, false
	}
	switch r.act {
	case "nan", "inf":
		return r.act, int(r.bytes), 0, true
	case "gradscale":
		return r.act, 0, r.fval, true
	}
	return "", 0, 0, false
}

// Writer instruments a write stream at a point. When a cut rule fires for
// this invocation, the returned writer delivers the scripted number of
// bytes and then fails every subsequent write with an injected fault — a
// torn write, indistinguishable on disk from a crash mid-write. An err rule
// fails immediately; with no armed plan or no firing rule, w is returned
// unchanged (zero overhead on the actual writes).
func Writer(point string, w io.Writer) io.Writer {
	p := active.Load()
	if p == nil {
		return w
	}
	r, call := p.hit(point)
	if r == nil {
		return w
	}
	f := &Fault{Point: point, Call: call, Action: r.act}
	switch r.act {
	case "err":
		return &cutWriter{w: w, left: 0, fault: f}
	case "flip":
		return &flipWriter{w: w, at: r.bytes}
	}
	return &cutWriter{w: w, left: r.bytes, fault: f}
}

// cutWriter passes through left bytes, then fails everything.
type cutWriter struct {
	w     io.Writer
	left  int64
	fault *Fault
}

func (c *cutWriter) Write(b []byte) (int, error) {
	if c.left <= 0 {
		return 0, c.fault
	}
	if int64(len(b)) <= c.left {
		n, err := c.w.Write(b)
		c.left -= int64(n)
		return n, err
	}
	n, err := c.w.Write(b[:c.left])
	c.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, c.fault
}

// flipWriter passes the stream through verbatim except for one byte at
// absolute offset at, which it XORs with 0xFF. Every write reports full
// success — the corruption is silent, detectable only by a checksum.
type flipWriter struct {
	w   io.Writer
	at  int64 // target offset, relative to the stream's remaining bytes
	off int64 // bytes passed through so far
}

func (fw *flipWriter) Write(b []byte) (int, error) {
	if fw.at >= fw.off && fw.at < fw.off+int64(len(b)) {
		mut := append([]byte(nil), b...)
		mut[fw.at-fw.off] ^= 0xFF
		n, err := fw.w.Write(mut)
		fw.off += int64(n)
		return n, err
	}
	n, err := fw.w.Write(b)
	fw.off += int64(n)
	return n, err
}
