package faultinject

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// arm activates a plan for the test and disarms on cleanup — the package
// state is process-global, so tests must not leak an armed plan.
func arm(t *testing.T, spec string, seed uint64) *Plan {
	t.Helper()
	p, err := Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	Arm(p)
	t.Cleanup(Disarm)
	return p
}

func TestDisarmedIsNoOp(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if err := Hit("any.point"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	var buf bytes.Buffer
	if w := Writer("any.point", &buf); w != &buf {
		t.Fatal("disarmed Writer must return the writer unchanged")
	}
}

func TestExactCallErr(t *testing.T) {
	p := arm(t, "datasource.read@3=err", 0)
	for i := 1; i <= 5; i++ {
		err := Hit(PointSourceRead)
		if (i == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v, want fault exactly on call 3", i, err)
		}
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Point != PointSourceRead || f.Call != 3 {
				t.Fatalf("fault %+v, want point %s call 3", f, PointSourceRead)
			}
		}
	}
	if fired := p.Fired(); len(fired) != 1 || fired[0] != "datasource.read@3=err" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEveryN(t *testing.T) {
	arm(t, "x@every:2=err", 0)
	var faults int
	for i := 0; i < 10; i++ {
		if Hit("x") != nil {
			faults++
		}
	}
	if faults != 5 {
		t.Fatalf("every:2 fired %d of 10, want 5", faults)
	}
}

func TestStallProceeds(t *testing.T) {
	arm(t, "x@1=stall:30ms", 0)
	start := time.Now()
	if err := Hit("x"); err != nil {
		t.Fatalf("stall must not error, got %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
	if err := Hit("x"); err != nil {
		t.Fatalf("call 2 must pass, got %v", err)
	}
}

func TestCutWriterTears(t *testing.T) {
	arm(t, "checkpoint.write@1=cut:10", 0)
	var buf bytes.Buffer
	w := Writer(PointCheckpointWrite, &buf)
	n, err := w.Write(make([]byte, 6))
	if n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v, want 4 bytes then injected fault", n, err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatal("writes after the tear must keep failing")
	}
	if buf.Len() != 10 {
		t.Fatalf("%d bytes reached the stream, want exactly 10", buf.Len())
	}
}

func TestWriterUnaffectedCalls(t *testing.T) {
	arm(t, "checkpoint.write@2=cut:0", 0)
	var buf bytes.Buffer
	w := Writer(PointCheckpointWrite, &buf) // call 1: no rule
	if w != &buf {
		t.Fatal("non-matching call must return the raw writer")
	}
	w = Writer(PointCheckpointWrite, &buf) // call 2: cut:0 — nothing gets through
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("cut:0 write err=%v", err)
	}
}

// TestSeededProbabilityDeterministic: the same seed faults the same calls;
// a different seed faults a different (but still deterministic) set.
func TestSeededProbabilityDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		arm(t, "x@p0.3=err", seed)
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if Hit("x") != nil {
				sb.WriteByte('F')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a1, a2, b := pattern(7), pattern(7), pattern(8)
	if a1 != a2 {
		t.Fatalf("seed 7 not reproducible:\n%s\n%s", a1, a2)
	}
	if a1 == b {
		t.Fatal("different seeds produced identical fault patterns")
	}
	if n := strings.Count(a1, "F"); n == 0 || n == 64 {
		t.Fatalf("p0.3 fired %d of 64 calls", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noatsign=err", "x@=err", "x@0=err", "x@1", "x@1=boom",
		"x@1=stall:xx", "x@1=cut:-1", "x@every:0=err", "x@p1.5=err", "x@1=err:param",
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 0); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	p, err := Parse(" x@1=err ; y@every:3=stall:1ms ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.rules["x"]) != 1 || len(p.rules["y"]) != 1 {
		t.Fatalf("rules = %v", p.rules)
	}
	if _, err := Parse("", 0); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}
