package lsh

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sync"

	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// DWTA is the Densified Winner-Take-All hash family (Chen & Shrivastava
// 2018), SLIDE's workhorse for sparse data.
//
// The input dimension is pseudo-randomly permuted into K·L bins of BinSize
// slots each. The hash of one bin is the slot index holding the maximum
// value; K consecutive bins concatenate into one table's bucket index
// (K·log2(BinSize) bits). Bins that receive no non-zero (common under
// extreme sparsity) are "densified": they borrow the winner of a donor bin
// chosen by a deterministic universal-hash hop sequence, so near-identical
// vectors still collide.
//
// Following §4.3.3, the random index map is precomputed at construction and
// the per-bin winner scan is the simd.ArgMax kernel.
type DWTA struct {
	k       int // hashes (bins) per table
	l       int // number of tables
	binSize int // slots per bin; power of two
	dim     int // input dimensionality
	slotBit int // log2(binSize)

	// perm maps position p in [0, k*l*binSize) to a feature index.
	// Built from ceil(positions/dim) independent permutations of [0,dim)
	// ("rotations") so every position is backed by a real feature.
	perm []int32
	// featPos is the CSR inverse of perm: featPos[featStart[f]:featStart[f+1]]
	// lists the positions feature f occupies. Sparse inputs walk only their
	// non-zeros through this map.
	featStart []int32
	featPos   []int32

	maxDensify int // bounded donor-hop attempts
	seed       uint64

	scratch sync.Pool // *dwtaScratch
}

type dwtaScratch struct {
	binMax    []float32 // running max per bin
	binWinner []int8    // winning slot per bin, -1 = empty
	gathered  []float32 // dense path: values gathered into position order
}

// DWTAConfig parameterizes NewDWTA.
type DWTAConfig struct {
	// K is the number of WTA bins concatenated per table (paper: 6 for
	// Amazon-670K, 5 for WikiLSH-325K).
	K int
	// L is the number of hash tables (paper: 400 / 350).
	L int
	// BinSize is the number of slots per bin; must be a power of two.
	// 0 defaults to 8 (3 bits per bin, SLIDE's setting).
	BinSize int
	// Dim is the input dimensionality of hashed vectors.
	Dim int
	// Seed drives the permutation and the densification hops.
	Seed uint64
}

// NewDWTA builds a DWTA hasher.
func NewDWTA(cfg DWTAConfig) (*DWTA, error) {
	if cfg.BinSize == 0 {
		cfg.BinSize = 8
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: DWTA requires K>0 and L>0, got K=%d L=%d", cfg.K, cfg.L)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsh: DWTA requires Dim>0, got %d", cfg.Dim)
	}
	if cfg.BinSize < 2 || cfg.BinSize&(cfg.BinSize-1) != 0 {
		return nil, fmt.Errorf("lsh: DWTA BinSize must be a power of two >= 2, got %d", cfg.BinSize)
	}
	slotBit := bits.TrailingZeros(uint(cfg.BinSize))
	if cfg.K*slotBit > 30 {
		return nil, fmt.Errorf("lsh: DWTA bucket index needs %d bits (>30); lower K or BinSize", cfg.K*slotBit)
	}

	d := &DWTA{
		k:          cfg.K,
		l:          cfg.L,
		binSize:    cfg.BinSize,
		dim:        cfg.Dim,
		slotBit:    slotBit,
		maxDensify: 64,
		seed:       cfg.Seed,
	}
	positions := cfg.K * cfg.L * cfg.BinSize
	d.perm = make([]int32, positions)
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5851F42D4C957F2D))

	// Fill positions with rotations of fresh permutations of [0, dim).
	p := 0
	for p < positions {
		chunk := positions - p
		if chunk > cfg.Dim {
			chunk = cfg.Dim
		}
		permutation := rng.Perm(cfg.Dim)
		for i := 0; i < chunk; i++ {
			d.perm[p+i] = int32(permutation[i])
		}
		p += chunk
	}

	// Invert into CSR form.
	counts := make([]int32, cfg.Dim+1)
	for _, f := range d.perm {
		counts[f+1]++
	}
	for i := 1; i <= cfg.Dim; i++ {
		counts[i] += counts[i-1]
	}
	d.featStart = counts
	d.featPos = make([]int32, positions)
	fill := make([]int32, cfg.Dim)
	for pos, f := range d.perm {
		d.featPos[d.featStart[f]+fill[f]] = int32(pos)
		fill[f]++
	}

	nbins := cfg.K * cfg.L
	d.scratch.New = func() any {
		return &dwtaScratch{
			binMax:    make([]float32, nbins),
			binWinner: make([]int8, nbins),
			gathered:  make([]float32, positions),
		}
	}
	return d, nil
}

// Tables implements Hasher.
func (d *DWTA) Tables() int { return d.l }

// Bits implements Hasher.
func (d *DWTA) Bits() int { return d.k * d.slotBit }

// Dim returns the configured input dimensionality.
func (d *DWTA) Dim() int { return d.dim }

// Hash implements Hasher for sparse inputs: only the non-zero features walk
// the inverse map, so cost is O(nnz · positions/dim + K·L).
func (d *DWTA) Hash(v sparse.Vector, out []uint32) {
	if len(out) < d.l {
		panic("lsh: DWTA.Hash out slice too short")
	}
	s := d.scratch.Get().(*dwtaScratch)
	defer d.scratch.Put(s)

	nbins := d.k * d.l
	for i := 0; i < nbins; i++ {
		s.binWinner[i] = -1
		s.binMax[i] = float32(math.Inf(-1))
	}
	for n, f := range v.Indices {
		if int(f) >= d.dim || f < 0 {
			panic(fmt.Sprintf("lsh: feature index %d out of range [0,%d)", f, d.dim))
		}
		val := v.Values[n]
		for _, pos := range d.featPos[d.featStart[f]:d.featStart[f+1]] {
			bin := int(pos) >> d.slotBit
			if val > s.binMax[bin] {
				s.binMax[bin] = val
				s.binWinner[bin] = int8(int(pos) & (d.binSize - 1))
			}
		}
	}
	d.assemble(s, out)
}

// HashDense implements Hasher for dense vectors (neuron weights, dense
// activations). Values are gathered into position order once and each bin's
// winner comes from the simd.ArgMax kernel (§4.3.3's vectorized max).
func (d *DWTA) HashDense(vals []float32, out []uint32) {
	if len(out) < d.l {
		panic("lsh: DWTA.HashDense out slice too short")
	}
	s := d.scratch.Get().(*dwtaScratch)
	defer d.scratch.Put(s)

	n := len(vals)
	neg := float32(math.Inf(-1))
	for p, f := range d.perm {
		if int(f) < n {
			s.gathered[p] = vals[f]
		} else {
			s.gathered[p] = neg
		}
	}
	// Resolve the kernel table once per hash: the bin loop below runs k*l
	// ArgMax calls, and the dispatching wrapper would re-read the atomic
	// mode switch in every one.
	argMax := simd.Active().ArgMax
	nbins := d.k * d.l
	for b := 0; b < nbins; b++ {
		lo := b << d.slotBit
		bin := s.gathered[lo : lo+d.binSize]
		w := argMax(bin)
		if math.IsInf(float64(bin[w]), -1) {
			s.binWinner[b] = -1
		} else {
			s.binWinner[b] = int8(w)
		}
	}
	d.assemble(s, out)
}

// assemble concatenates per-bin winners into per-table bucket indices,
// densifying empty bins.
func (d *DWTA) assemble(s *dwtaScratch, out []uint32) {
	for t := 0; t < d.l; t++ {
		var h uint32
		base := t * d.k
		for k := 0; k < d.k; k++ {
			bin := base + k
			w := s.binWinner[bin]
			if w < 0 {
				w = d.densify(s, bin)
			}
			h = h<<d.slotBit | uint32(w)
		}
		out[t] = h
	}
}

// densify borrows a winner for an empty bin via a deterministic universal-
// hash hop sequence over all bins. Returns 0 if every attempt lands empty
// (e.g. the all-zero vector).
func (d *DWTA) densify(s *dwtaScratch, bin int) int8 {
	nbins := d.k * d.l
	for a := 1; a <= d.maxDensify; a++ {
		donor := int(splitmix64(d.seed^(uint64(bin)<<20|uint64(a))) % uint64(nbins))
		if w := s.binWinner[donor]; w >= 0 {
			return w
		}
	}
	return 0
}
