package lsh

import (
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

// FuzzDWTAHash feeds arbitrary sparse vectors (indices reduced into range)
// to the DWTA sparse path: hashes must stay in the bucket space and be
// deterministic.
func FuzzDWTAHash(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{10, 20, 30})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0, 0, 0})
	d, err := NewDWTA(DWTAConfig{K: 3, L: 8, Dim: 64, Seed: 99})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, idxRaw, valRaw []byte) {
		n := min(len(idxRaw), len(valRaw))
		seen := map[int32]bool{}
		var idx []int32
		var val []float32
		for i := 0; i < n; i++ {
			fi := int32(idxRaw[i]) % 64
			if seen[fi] {
				continue
			}
			seen[fi] = true
			idx = append(idx, fi)
			val = append(val, float32(int8(valRaw[i]))/16)
		}
		v := sparse.Vector{Indices: idx, Values: val}
		out1 := make([]uint32, 8)
		out2 := make([]uint32, 8)
		d.Hash(v, out1)
		d.Hash(v, out2)
		limit := uint32(1) << d.Bits()
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatal("hash is not deterministic")
			}
			if out1[i] >= limit {
				t.Fatalf("hash %d outside bucket space %d", out1[i], limit)
			}
		}
	})
}

// FuzzTableInsert exercises bucket policies with arbitrary id/fingerprint
// streams: buckets must never exceed capacity and never hold ids that were
// not inserted.
func FuzzTableInsert(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, stream []byte) {
		for _, policy := range []BucketPolicy{FIFO, Reservoir} {
			tbl := NewTable(4, 3, policy, 7)
			inserted := map[int32]bool{}
			for i := 0; i+1 < len(stream); i += 2 {
				id := int32(stream[i])
				tbl.Insert(id, uint32(stream[i+1]))
				inserted[id] = true
			}
			for b := 0; b < tbl.Buckets(); b++ {
				bucket := tbl.Query(uint32(b))
				if len(bucket) > 3 {
					t.Fatalf("%v bucket %d exceeded capacity: %v", policy, b, bucket)
				}
				for _, id := range bucket {
					if !inserted[id] {
						t.Fatalf("%v bucket %d holds phantom id %d", policy, b, id)
					}
				}
			}
		}
	})
}
