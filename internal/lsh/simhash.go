package lsh

import (
	"fmt"
	"sync"

	"github.com/slide-cpu/slide/internal/sparse"
)

// SimHash is the signed-random-projection family, used by the paper for the
// Text8 workload (K=9, L=50).
//
// Bit k of table t is the sign of the projection of the input onto a
// pseudo-random ±1 hyperplane. Hyperplane entries are derived from a
// splitmix64 of (seed, bit, feature); for moderate dimensions they are
// additionally materialized into a packed bitset at construction
// (dim·K·L bits), replacing a 64-bit mix per (bit, feature) with one bit
// load on the query hot path — the LSH query is a top phase of the Text8
// step (see harness.Profile). Above PrecomputeLimit the lazy derivation is
// kept to bound memory; both paths produce identical fingerprints.
type SimHash struct {
	k    int
	l    int
	dim  int
	seed uint64

	// signs is the packed ±1 matrix, indexed [f*nbits + b]; bit set means
	// +1. nil when dim*nbits exceeds PrecomputeLimit.
	signs []uint64

	scratch sync.Pool // *simhashScratch
}

// PrecomputeLimit bounds the precomputed sign matrix to 16M entries (2 MiB
// packed); larger hashers derive signs lazily.
const PrecomputeLimit = 16 << 20

type simhashScratch struct {
	acc []float32 // K*L projection accumulators
}

// SimHashConfig parameterizes NewSimHash.
type SimHashConfig struct {
	// K is the number of sign bits per table (paper: 9 for Text8).
	K int
	// L is the number of tables (paper: 50).
	L int
	// Dim is the input dimensionality.
	Dim int
	// Seed drives the hyperplane derivation.
	Seed uint64
}

// NewSimHash builds a SimHash hasher.
func NewSimHash(cfg SimHashConfig) (*SimHash, error) {
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: SimHash requires K>0 and L>0, got K=%d L=%d", cfg.K, cfg.L)
	}
	if cfg.K > 30 {
		return nil, fmt.Errorf("lsh: SimHash K=%d produces an unindexable bucket space", cfg.K)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsh: SimHash requires Dim>0, got %d", cfg.Dim)
	}
	s := &SimHash{k: cfg.K, l: cfg.L, dim: cfg.Dim, seed: cfg.Seed}
	n := cfg.K * cfg.L
	if total := cfg.Dim * n; total <= PrecomputeLimit {
		s.signs = make([]uint64, (total+63)/64)
		for f := 0; f < cfg.Dim; f++ {
			base := f * n
			for b := 0; b < n; b++ {
				if s.derive(b, int32(f)) > 0 {
					s.signs[(base+b)>>6] |= 1 << (uint(base+b) & 63)
				}
			}
		}
	}
	s.scratch.New = func() any {
		return &simhashScratch{acc: make([]float32, n)}
	}
	return s, nil
}

// Tables implements Hasher.
func (s *SimHash) Tables() int { return s.l }

// Bits implements Hasher.
func (s *SimHash) Bits() int { return s.k }

// Dim returns the configured input dimensionality.
func (s *SimHash) Dim() int { return s.dim }

// derive computes the ±1 hyperplane entry (bitIdx, feature) from the hash.
func (s *SimHash) derive(bitIdx int, feature int32) float32 {
	h := splitmix64(s.seed ^ uint64(bitIdx)<<32 ^ uint64(uint32(feature)))
	if h&1 == 0 {
		return 1
	}
	return -1
}

// sign returns the hyperplane entry, served from the precomputed bitset
// when available.
func (s *SimHash) sign(bitIdx int, feature int32) float32 {
	if s.signs != nil {
		pos := int(feature)*s.k*s.l + bitIdx
		if s.signs[pos>>6]&(1<<(uint(pos)&63)) != 0 {
			return 1
		}
		return -1
	}
	return s.derive(bitIdx, feature)
}

// Hash implements Hasher for sparse inputs.
func (s *SimHash) Hash(v sparse.Vector, out []uint32) {
	if len(out) < s.l {
		panic("lsh: SimHash.Hash out slice too short")
	}
	sc := s.scratch.Get().(*simhashScratch)
	defer s.scratch.Put(sc)

	acc := sc.acc
	clear(acc)
	nbits := s.k * s.l
	for n, f := range v.Indices {
		if int(f) >= s.dim || f < 0 {
			panic(fmt.Sprintf("lsh: feature index %d out of range [0,%d)", f, s.dim))
		}
		val := v.Values[n]
		for b := 0; b < nbits; b++ {
			acc[b] += val * s.sign(b, f)
		}
	}
	s.assemble(acc, out)
}

// HashDense implements Hasher for dense vectors.
func (s *SimHash) HashDense(vals []float32, out []uint32) {
	if len(out) < s.l {
		panic("lsh: SimHash.HashDense out slice too short")
	}
	sc := s.scratch.Get().(*simhashScratch)
	defer s.scratch.Put(sc)

	acc := sc.acc
	clear(acc)
	nbits := s.k * s.l
	for f := range vals {
		val := vals[f]
		if val == 0 {
			continue
		}
		for b := 0; b < nbits; b++ {
			acc[b] += val * s.sign(b, int32(f))
		}
	}
	s.assemble(acc, out)
}

func (s *SimHash) assemble(acc []float32, out []uint32) {
	for t := 0; t < s.l; t++ {
		var h uint32
		base := t * s.k
		for k := 0; k < s.k; k++ {
			h <<= 1
			if acc[base+k] > 0 {
				h |= 1
			}
		}
		out[t] = h
	}
}
