package lsh

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/slide-cpu/slide/internal/sparse"
)

// DOPH is Densified One-Permutation (min-)Hashing for binary data — the
// hash family the SLIDE codebase uses for one-hot / set-valued inputs,
// where only the support of the vector matters. One fixed permutation of
// the feature universe is cut into K·L bins; each bin's hash is (a few bits
// of) the minimum permuted rank present in it, and empty bins borrow from
// donors exactly like DWTA. Two sets collide per bin with probability equal
// to their Jaccard similarity, at the cost of a single permutation instead
// of K·L independent minwise hashes.
type DOPH struct {
	k, l       int
	dim        int
	bitsPerBin int

	binOf []int32 // feature -> bin
	rank  []int32 // feature -> permuted rank (minimized within a bin)

	maxDensify int
	seed       uint64

	scratch sync.Pool // *dophScratch
}

type dophScratch struct {
	binMin []int32 // minimum rank seen per bin; -1 = empty
}

// DOPHConfig parameterizes NewDOPH.
type DOPHConfig struct {
	// K is the number of minhash bins concatenated per table.
	K int
	// L is the number of tables.
	L int
	// BitsPerBin is how many fingerprint bits each bin contributes
	// (default 3, giving 2^(3K) buckets like DWTA with bin size 8).
	BitsPerBin int
	// Dim is the feature-universe size.
	Dim int
	// Seed drives the permutation and densification.
	Seed uint64
}

// NewDOPH builds a DOPH hasher.
func NewDOPH(cfg DOPHConfig) (*DOPH, error) {
	if cfg.BitsPerBin == 0 {
		cfg.BitsPerBin = 3
	}
	if cfg.K <= 0 || cfg.L <= 0 {
		return nil, fmt.Errorf("lsh: DOPH requires K>0 and L>0, got K=%d L=%d", cfg.K, cfg.L)
	}
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsh: DOPH requires Dim>0, got %d", cfg.Dim)
	}
	if cfg.BitsPerBin < 1 || cfg.K*cfg.BitsPerBin > 30 {
		return nil, fmt.Errorf("lsh: DOPH bucket index needs %d bits (want 1..30)", cfg.K*cfg.BitsPerBin)
	}
	nbins := cfg.K * cfg.L
	d := &DOPH{
		k: cfg.K, l: cfg.L, dim: cfg.Dim, bitsPerBin: cfg.BitsPerBin,
		maxDensify: 64, seed: cfg.Seed,
		binOf: make([]int32, cfg.Dim),
		rank:  make([]int32, cfg.Dim),
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xD09B))
	perm := rng.Perm(cfg.Dim)
	for pos, f := range perm {
		d.rank[f] = int32(pos)
		d.binOf[f] = int32(int64(pos) * int64(nbins) / int64(cfg.Dim))
	}
	d.scratch.New = func() any {
		return &dophScratch{binMin: make([]int32, nbins)}
	}
	return d, nil
}

// Tables implements Hasher.
func (d *DOPH) Tables() int { return d.l }

// Bits implements Hasher.
func (d *DOPH) Bits() int { return d.k * d.bitsPerBin }

// Dim returns the configured feature-universe size.
func (d *DOPH) Dim() int { return d.dim }

// Hash implements Hasher for sparse inputs. Values are ignored: the support
// set determines the hash.
func (d *DOPH) Hash(v sparse.Vector, out []uint32) {
	if len(out) < d.l {
		panic("lsh: DOPH.Hash out slice too short")
	}
	s := d.scratch.Get().(*dophScratch)
	defer d.scratch.Put(s)
	for i := range s.binMin {
		s.binMin[i] = -1
	}
	for _, f := range v.Indices {
		if f < 0 || int(f) >= d.dim {
			panic(fmt.Sprintf("lsh: feature index %d out of range [0,%d)", f, d.dim))
		}
		bin := d.binOf[f]
		if r := d.rank[f]; s.binMin[bin] < 0 || r < s.binMin[bin] {
			s.binMin[bin] = r
		}
	}
	d.assemble(s, out)
}

// HashDense implements Hasher: every non-zero coordinate counts as present.
func (d *DOPH) HashDense(vals []float32, out []uint32) {
	if len(out) < d.l {
		panic("lsh: DOPH.HashDense out slice too short")
	}
	s := d.scratch.Get().(*dophScratch)
	defer d.scratch.Put(s)
	for i := range s.binMin {
		s.binMin[i] = -1
	}
	n := min(len(vals), d.dim)
	for f := 0; f < n; f++ {
		if vals[f] == 0 {
			continue
		}
		bin := d.binOf[f]
		if r := d.rank[f]; s.binMin[bin] < 0 || r < s.binMin[bin] {
			s.binMin[bin] = r
		}
	}
	d.assemble(s, out)
}

func (d *DOPH) assemble(s *dophScratch, out []uint32) {
	mask := uint32(1)<<d.bitsPerBin - 1
	for t := 0; t < d.l; t++ {
		var h uint32
		base := t * d.k
		for k := 0; k < d.k; k++ {
			bin := base + k
			m := s.binMin[bin]
			if m < 0 {
				m = d.densify(s, bin)
			}
			// Fingerprint bits come from a mix of the min rank, so nearby
			// ranks do not alias trivially.
			bits := uint32(splitmix64(d.seed^uint64(uint32(m))*0x9E3779B97F4A7C15)) & mask
			h = h<<d.bitsPerBin | bits
		}
		out[t] = h
	}
}

// densify borrows the min of a donor bin via a deterministic hop sequence;
// returns 0 when every probe lands empty (the empty set).
func (d *DOPH) densify(s *dophScratch, bin int) int32 {
	nbins := d.k * d.l
	for a := 1; a <= d.maxDensify; a++ {
		donor := int(splitmix64(d.seed^(uint64(bin)<<20|uint64(a))) % uint64(nbins))
		if m := s.binMin[donor]; m >= 0 {
			return m
		}
	}
	return 0
}
