package lsh

import (
	"math/rand/v2"
	"sync"
	"testing"
)

func TestTableInsertQuery(t *testing.T) {
	tbl := NewTable(4, 8, FIFO, 1)
	if tbl.Buckets() != 16 {
		t.Fatalf("Buckets = %d, want 16", tbl.Buckets())
	}
	tbl.Insert(10, 3)
	tbl.Insert(11, 3)
	tbl.Insert(12, 19) // 19 & 15 == 3: same bucket
	got := tbl.Query(3)
	if len(got) != 3 {
		t.Fatalf("bucket has %d entries, want 3", len(got))
	}
	if got[0] != 10 || got[1] != 11 || got[2] != 12 {
		t.Errorf("bucket contents %v", got)
	}
	if len(tbl.Query(4)) != 0 {
		t.Error("empty bucket should return nothing")
	}
}

func TestTableFIFOEviction(t *testing.T) {
	tbl := NewTable(2, 3, FIFO, 1)
	for id := int32(0); id < 7; id++ {
		tbl.Insert(id, 0)
	}
	// Capacity 3, inserts 0..6: ring holds the 3 newest: 6, 4, 5 in ring
	// order (position = count % cap).
	got := tbl.Query(0)
	want := map[int32]bool{4: true, 5: true, 6: true}
	if len(got) != 3 {
		t.Fatalf("bucket size %d, want 3", len(got))
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("FIFO kept stale id %d (bucket %v)", id, got)
		}
	}
}

func TestTableReservoirBoundsAndCoverage(t *testing.T) {
	tbl := NewTable(2, 16, Reservoir, 42)
	n := int32(1000)
	for id := int32(0); id < n; id++ {
		tbl.Insert(id, 5)
	}
	got := tbl.Query(5)
	if len(got) != 16 {
		t.Fatalf("reservoir size %d, want 16", len(got))
	}
	// A uniform reservoir over 1000 inserts should not be dominated by the
	// first 16 (FIFO-never-evicts failure) nor by the last 16 (always
	// overwrite failure). Check it mixes early and late ids.
	early, late := 0, 0
	for _, id := range got {
		if id < 100 {
			early++
		}
		if id >= 900 {
			late++
		}
	}
	if early == 16 || late == 16 {
		t.Errorf("reservoir is degenerate: early=%d late=%d (%v)", early, late, got)
	}
}

func TestTableReservoirUniformity(t *testing.T) {
	// Aggregate over many independent tables: each of the 100 inserted ids
	// should appear with roughly equal frequency (cap/n = 0.2).
	trials := 400
	counts := make([]int, 100)
	for trial := 0; trial < trials; trial++ {
		tbl := NewTable(1, 20, Reservoir, uint64(trial)*2654435761)
		for id := int32(0); id < 100; id++ {
			tbl.Insert(id, 0)
		}
		for _, id := range tbl.Query(0) {
			counts[id]++
		}
	}
	// Expected 80 appearances per id (400 * 0.2); flag anything wildly off.
	for id, c := range counts {
		if c < 40 || c > 120 {
			t.Errorf("id %d kept %d times, expected near 80 (non-uniform reservoir)", id, c)
		}
	}
}

func TestTableClear(t *testing.T) {
	tbl := NewTable(3, 4, FIFO, 1)
	tbl.Insert(1, 0)
	tbl.Insert(2, 7)
	ne, stored := tbl.Occupancy()
	if ne != 2 || stored != 2 {
		t.Fatalf("occupancy %d/%d, want 2/2", ne, stored)
	}
	tbl.Clear()
	ne, stored = tbl.Occupancy()
	if ne != 0 || stored != 0 {
		t.Errorf("after Clear occupancy %d/%d, want 0/0", ne, stored)
	}
	// Table must be reusable after Clear with fresh FIFO positions.
	tbl.Insert(9, 0)
	if got := tbl.Query(0); len(got) != 1 || got[0] != 9 {
		t.Errorf("post-Clear insert broken: %v", got)
	}
}

func TestTableConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero bits":   func() { NewTable(0, 4, FIFO, 1) },
		"huge bits":   func() { NewTable(31, 4, FIFO, 1) },
		"zero bucket": func() { NewTable(4, 0, FIFO, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBucketPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Reservoir.String() != "reservoir" || BucketPolicy(9).String() != "unknown" {
		t.Error("BucketPolicy.String values wrong")
	}
}

func TestTableSetInsertAndQueryRoundTrip(t *testing.T) {
	d, err := NewDWTA(DWTAConfig{K: 2, L: 10, Dim: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTableSet(d, 64, FIFO, 9)
	rng := rand.New(rand.NewPCG(3, 4))

	n := 40
	weights := make([][]float32, n)
	for i := range weights {
		weights[i] = make([]float32, 32)
		for j := range weights[i] {
			weights[i][j] = float32(rng.NormFloat64())
		}
	}
	for i := range weights {
		ts.InsertDense(int32(i), weights[i])
	}

	// Querying with a stored vector must retrieve its own id (same hash =>
	// same buckets; capacity 64 is far above the 40 inserts).
	dedup := NewDedup(n)
	for i := range weights {
		dedup.Begin()
		found := false
		ts.QueryDense(weights[i], func(id int32) {
			if dedup.Seen(id) {
				return
			}
			if id == int32(i) {
				found = true
			}
		})
		if !found {
			t.Errorf("neuron %d not retrieved by its own weight vector", i)
		}
	}

	st := ts.Stats()
	if st.Tables != 10 || st.Stored == 0 {
		t.Errorf("stats look wrong: %+v", st)
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestTableSetRebuildMatchesSerialInsert(t *testing.T) {
	d, err := NewDWTA(DWTAConfig{K: 2, L: 6, Dim: 16, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(31, 7))
	n := 100
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, 16)
		for j := range rows[i] {
			rows[i][j] = float32(rng.NormFloat64())
		}
	}

	serial := NewTableSet(d, 32, FIFO, 77)
	for i := 0; i < n; i++ {
		serial.InsertDense(int32(i), rows[i])
	}
	parallel := NewTableSet(d, 32, FIFO, 77)
	parallel.RebuildDense(n, 16, func(i int, _ []float32) []float32 { return rows[i] }, 4)

	// Same hasher, same insert order (rebuild inserts chunks in id order),
	// same seeds: bucket contents must be identical.
	for ti := range serial.tables {
		st, pt := serial.tables[ti], parallel.tables[ti]
		for b := 0; b < st.Buckets(); b++ {
			sb, pb := st.Query(uint32(b)), pt.Query(uint32(b))
			if len(sb) != len(pb) {
				t.Fatalf("table %d bucket %d: serial %v parallel %v", ti, b, sb, pb)
			}
			for k := range sb {
				if sb[k] != pb[k] {
					t.Fatalf("table %d bucket %d: serial %v parallel %v", ti, b, sb, pb)
				}
			}
		}
	}
}

func TestTableSetRebuildClearsOldEntries(t *testing.T) {
	d, err := NewDWTA(DWTAConfig{K: 2, L: 4, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTableSet(d, 16, FIFO, 2)
	ts.InsertDense(999, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	ts.RebuildDense(3, 8, func(i int, _ []float32) []float32 {
		return []float32{float32(i), 1, 2, 3, 4, 5, 6, 7}
	}, 1)
	st := ts.Stats()
	if st.Stored != 3*4 { // 3 neurons x 4 tables
		t.Errorf("stored %d ids after rebuild, want 12 (stale id leaked?)", st.Stored)
	}
}

func TestTableSetConcurrentQueryRebuild(t *testing.T) {
	// Stress rebuilds racing queries under -race: correctness requirement is
	// only "no crash, no torn data" — returned ids must always be valid.
	d, err := NewDWTA(DWTAConfig{K: 2, L: 8, Dim: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTableSet(d, 8, FIFO, 4)
	n := 50
	rows := make([][]float32, n)
	rng := rand.New(rand.NewPCG(8, 9))
	for i := range rows {
		rows[i] = make([]float32, 24)
		for j := range rows[i] {
			rows[i][j] = float32(rng.NormFloat64())
		}
	}
	ts.RebuildDense(n, 24, func(i int, _ []float32) []float32 { return rows[i] }, 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := rows[w]
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts.QueryDense(q, func(id int32) {
					if id < 0 || id >= int32(n) {
						t.Errorf("invalid id %d from query", id)
					}
				})
			}
		}(w)
	}
	for r := 0; r < 5; r++ {
		ts.RebuildDense(n, 24, func(i int, _ []float32) []float32 { return rows[i] }, 2)
	}
	close(stop)
	wg.Wait()
}

func TestTableSetCloneIsIndependent(t *testing.T) {
	d, err := NewDWTA(DWTAConfig{K: 2, L: 6, Dim: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTableSet(d, 32, FIFO, 3)
	rng := rand.New(rand.NewPCG(5, 6))
	n := 30
	weights := make([][]float32, n)
	for i := range weights {
		weights[i] = make([]float32, 16)
		for j := range weights[i] {
			weights[i][j] = float32(rng.NormFloat64())
		}
	}
	ts.RebuildDense(n, 16, func(i int, _ []float32) []float32 { return weights[i] }, 2)

	collect := func(set *TableSet, q []float32) map[int32]bool {
		got := map[int32]bool{}
		set.QueryDense(q, func(id int32) { got[id] = true })
		return got
	}
	clone := ts.Clone()
	for i := range weights {
		a, b := collect(ts, weights[i]), collect(clone, weights[i])
		if len(a) != len(b) {
			t.Fatalf("query %d: clone returned %d ids, original %d", i, len(b), len(a))
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("query %d: clone missing id %d", i, id)
			}
		}
	}

	// Rebuild the original over half the neurons: the clone must keep
	// serving the old contents.
	ts.RebuildDense(n/2, 16, func(i int, _ []float32) []float32 { return weights[i] }, 2)
	if !collect(clone, weights[n-1])[int32(n-1)] {
		t.Error("clone lost an id after the original was rebuilt")
	}
	if collect(ts, weights[n-1])[int32(n-1)] {
		t.Error("original still serves an id dropped by its rebuild")
	}

	// Inserting into the clone must not leak into the original.
	extra := make([]float32, 16)
	for j := range extra {
		extra[j] = float32(rng.NormFloat64())
	}
	clone.InsertDense(int32(999), extra)
	if collect(ts, extra)[999] {
		t.Error("insert into clone reached the original")
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup(10)
	d.Begin()
	if d.Seen(3) {
		t.Error("fresh id reported seen")
	}
	if !d.Seen(3) {
		t.Error("repeat id not reported seen")
	}
	d.Begin()
	if d.Seen(3) {
		t.Error("new round should reset seen state")
	}
}

func TestDedupWrapAround(t *testing.T) {
	d := NewDedup(4)
	d.cur = ^uint32(0) - 1
	d.Begin() // cur = max
	d.Seen(2)
	d.Begin() // wraps: must clear stamps and restart at 1
	if d.cur != 1 {
		t.Fatalf("cur after wrap = %d, want 1", d.cur)
	}
	if d.Seen(2) {
		t.Error("stale stamp survived wrap-around")
	}
}
