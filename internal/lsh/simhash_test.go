package lsh

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

func mustSimHash(t *testing.T, cfg SimHashConfig) *SimHash {
	t.Helper()
	s, err := NewSimHash(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimHashConfigValidation(t *testing.T) {
	cases := []SimHashConfig{
		{K: 0, L: 5, Dim: 10},
		{K: 3, L: 0, Dim: 10},
		{K: 3, L: 5, Dim: 0},
		{K: 31, L: 5, Dim: 10},
	}
	for i, cfg := range cases {
		if _, err := NewSimHash(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
	s := mustSimHash(t, SimHashConfig{K: 9, L: 50, Dim: 1000})
	if s.Bits() != 9 || s.Tables() != 50 || s.Dim() != 1000 {
		t.Errorf("accessors wrong: %d %d %d", s.Bits(), s.Tables(), s.Dim())
	}
}

func TestSimHashSparseDenseConsistency(t *testing.T) {
	dim := 64
	s := mustSimHash(t, SimHashConfig{K: 6, L: 20, Dim: dim, Seed: 3})
	rng := rand.New(rand.NewPCG(1, 2))

	// Sparse vector with a handful of non-zeros.
	idx := []int32{2, 9, 33, 60}
	val := make([]float32, len(idx))
	for i := range val {
		val[i] = float32(rng.NormFloat64())
	}
	v := sparse.Vector{Indices: idx, Values: val}

	hs := make([]uint32, 20)
	hd := make([]uint32, 20)
	s.Hash(v, hs)
	s.HashDense(v.Dense(dim), hd)
	for i := range hs {
		if hs[i] != hd[i] {
			t.Errorf("table %d: sparse %d != dense %d", i, hs[i], hd[i])
		}
	}
}

func TestSimHashScaleInvariance(t *testing.T) {
	s := mustSimHash(t, SimHashConfig{K: 8, L: 25, Dim: 100, Seed: 5})
	v := sparse.Vector{Indices: []int32{1, 5, 77}, Values: []float32{0.3, -2, 1.4}}
	scaled := sparse.Vector{Indices: v.Indices, Values: []float32{0.3 * 7, -2 * 7, 1.4 * 7}}
	h1 := make([]uint32, 25)
	h2 := make([]uint32, 25)
	s.Hash(v, h1)
	s.Hash(scaled, h2)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("table %d: positive scaling changed hash %d -> %d", i, h1[i], h2[i])
		}
	}
}

func TestSimHashLocalityTracksCosine(t *testing.T) {
	dim := 256
	s := mustSimHash(t, SimHashConfig{K: 1, L: 2000, Dim: dim, Seed: 9})
	rng := rand.New(rand.NewPCG(7, 8))

	a := make([]float32, dim)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	// b = cos(theta)*a + sin(theta)*orthogonal-ish noise
	theta := math.Pi / 4
	b := make([]float32, dim)
	for i := range b {
		b[i] = float32(math.Cos(theta))*a[i] + float32(math.Sin(theta))*float32(rng.NormFloat64())
	}

	ha := make([]uint32, 2000)
	hb := make([]uint32, 2000)
	s.HashDense(a, ha)
	s.HashDense(b, hb)
	agree := 0
	for i := range ha {
		if ha[i] == hb[i] {
			agree++
		}
	}
	// SRP theory: P[bit match] = 1 - theta/pi. For theta≈pi/4 that is 0.75
	// (the noise vector is only approximately orthogonal, allow slack).
	frac := float64(agree) / 2000
	if frac < 0.60 || frac > 0.90 {
		t.Errorf("bit agreement %.3f outside [0.60, 0.90] for 45-degree vectors", frac)
	}
}

func TestSimHashBucketRange(t *testing.T) {
	s := mustSimHash(t, SimHashConfig{K: 5, L: 10, Dim: 40, Seed: 11})
	out := make([]uint32, 10)
	s.Hash(sparse.Vector{Indices: []int32{0, 39}, Values: []float32{1, -1}}, out)
	for i, h := range out {
		if h >= 1<<5 {
			t.Errorf("table %d hash %d exceeds 5-bit space", i, h)
		}
	}
}

func TestSimHashZeroVector(t *testing.T) {
	s := mustSimHash(t, SimHashConfig{K: 4, L: 6, Dim: 10, Seed: 13})
	out := make([]uint32, 6)
	s.Hash(sparse.Vector{}, out) // must not panic
	for _, h := range out {
		if h != 0 { // all projections are 0 => all sign bits 0
			t.Errorf("zero vector hashed to non-zero bucket %d", h)
		}
	}
}

func TestSimHashPrecomputeMatchesDerive(t *testing.T) {
	// The packed sign matrix must reproduce the lazily derived family
	// exactly: a small hasher (precomputed) and a conceptually identical
	// large one (forced lazy by construction size) disagree only through
	// their seeds, so instead compare sign() against derive() directly.
	s := mustSimHash(t, SimHashConfig{K: 6, L: 20, Dim: 300, Seed: 41})
	if s.signs == nil {
		t.Fatal("small hasher should precompute its sign matrix")
	}
	for f := int32(0); f < 300; f++ {
		for b := 0; b < 6*20; b++ {
			if s.sign(b, f) != s.derive(b, f) {
				t.Fatalf("precomputed sign (bit %d, feature %d) diverges", b, f)
			}
		}
	}
	// A hasher over the lazy threshold must still work and stay in range.
	big := mustSimHash(t, SimHashConfig{K: 9, L: 50, Dim: 253855, Seed: 43})
	if big.signs != nil {
		t.Fatal("huge hasher should not materialize its sign matrix")
	}
	out := make([]uint32, 50)
	big.Hash(sparse.Vector{Indices: []int32{100000}, Values: []float32{1}}, out)
	for _, h := range out {
		if h >= 1<<9 {
			t.Fatalf("hash %d out of range", h)
		}
	}
}

func TestSimHashOutOfRangePanics(t *testing.T) {
	s := mustSimHash(t, SimHashConfig{K: 2, L: 2, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range feature did not panic")
		}
	}()
	s.Hash(sparse.Vector{Indices: []int32{-1}, Values: []float32{1}}, make([]uint32, 2))
}

func TestSimHashShortOutPanics(t *testing.T) {
	s := mustSimHash(t, SimHashConfig{K: 2, L: 5, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("short out slice did not panic")
		}
	}()
	s.HashDense(make([]float32, 10), make([]uint32, 4))
}
