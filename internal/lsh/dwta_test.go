package lsh

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"github.com/slide-cpu/slide/internal/sparse"
)

func mustDWTA(t *testing.T, cfg DWTAConfig) *DWTA {
	t.Helper()
	d, err := NewDWTA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDWTAConfigValidation(t *testing.T) {
	cases := []DWTAConfig{
		{K: 0, L: 5, Dim: 10},
		{K: 3, L: 0, Dim: 10},
		{K: 3, L: 5, Dim: 0},
		{K: 3, L: 5, Dim: 10, BinSize: 3},  // not a power of two
		{K: 3, L: 5, Dim: 10, BinSize: 1},  // too small
		{K: 11, L: 5, Dim: 10, BinSize: 8}, // 33 bucket bits
	}
	for i, cfg := range cases {
		if _, err := NewDWTA(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
	d := mustDWTA(t, DWTAConfig{K: 2, L: 3, Dim: 64, Seed: 1})
	if d.Bits() != 6 { // default binSize 8 -> 3 bits per bin
		t.Errorf("Bits = %d, want 6", d.Bits())
	}
	if d.Tables() != 3 || d.Dim() != 64 {
		t.Errorf("Tables/Dim = %d/%d", d.Tables(), d.Dim())
	}
}

func TestDWTADeterministic(t *testing.T) {
	d := mustDWTA(t, DWTAConfig{K: 3, L: 10, Dim: 100, Seed: 7})
	v := sparse.Vector{Indices: []int32{3, 17, 50, 99}, Values: []float32{1, -2, 3, 0.5}}
	h1 := make([]uint32, 10)
	h2 := make([]uint32, 10)
	d.Hash(v, h1)
	d.Hash(v, h2)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("table %d: %d != %d (non-deterministic)", i, h1[i], h2[i])
		}
	}
	// A different seed must give a different family.
	d2 := mustDWTA(t, DWTAConfig{K: 3, L: 10, Dim: 100, Seed: 8})
	h3 := make([]uint32, 10)
	d2.Hash(v, h3)
	same := 0
	for i := range h1 {
		if h1[i] == h3[i] {
			same++
		}
	}
	if same == 10 {
		t.Error("different seeds produced identical hash families")
	}
}

func TestDWTAHashInBucketRange(t *testing.T) {
	d := mustDWTA(t, DWTAConfig{K: 2, L: 8, Dim: 50, Seed: 3})
	rng := rand.New(rand.NewPCG(1, 2))
	out := make([]uint32, 8)
	limit := uint32(1) << d.Bits()
	for trial := 0; trial < 50; trial++ {
		nnz := 1 + rng.IntN(10)
		idx := make([]int32, 0, nnz)
		val := make([]float32, 0, nnz)
		used := map[int32]bool{}
		for len(idx) < nnz {
			i := int32(rng.IntN(50))
			if !used[i] {
				used[i] = true
				idx = append(idx, i)
				val = append(val, float32(rng.NormFloat64()))
			}
		}
		d.Hash(sparse.Vector{Indices: idx, Values: val}, out)
		for t2, h := range out {
			if h >= limit {
				t.Fatalf("table %d hash %d exceeds bucket space %d", t2, h, limit)
			}
		}
	}
}

func TestDWTAScaleInvariance(t *testing.T) {
	// WTA hashes depend only on argmax per bin, so any positive scaling of
	// the vector leaves every hash unchanged.
	d := mustDWTA(t, DWTAConfig{K: 4, L: 20, Dim: 200, Seed: 11})
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		nnz := 1 + rng.IntN(20)
		idx := make([]int32, 0, nnz)
		used := map[int32]bool{}
		for len(idx) < nnz {
			i := int32(rng.IntN(200))
			if !used[i] {
				used[i] = true
				idx = append(idx, i)
			}
		}
		// sort
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		val := make([]float32, nnz)
		for i := range val {
			val[i] = float32(rng.NormFloat64())
		}
		scaled := make([]float32, nnz)
		alpha := float32(0.001 + rng.Float64()*100)
		for i := range val {
			scaled[i] = val[i] * alpha
		}
		h1 := make([]uint32, 20)
		h2 := make([]uint32, 20)
		d.Hash(sparse.Vector{Indices: idx, Values: val}, h1)
		d.Hash(sparse.Vector{Indices: idx, Values: scaled}, h2)
		for i := range h1 {
			if h1[i] != h2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDWTASparseDenseConsistency(t *testing.T) {
	// When every coordinate is explicitly present, the sparse and dense
	// paths must produce identical fingerprints.
	dim := 48
	d := mustDWTA(t, DWTAConfig{K: 3, L: 15, Dim: dim, Seed: 21})
	rng := rand.New(rand.NewPCG(5, 6))
	vals := make([]float32, dim)
	idx := make([]int32, dim)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64()) + 0.001 // avoid exact zeros
		idx[i] = int32(i)
	}
	hs := make([]uint32, 15)
	hd := make([]uint32, 15)
	d.Hash(sparse.Vector{Indices: idx, Values: vals}, hs)
	d.HashDense(vals, hd)
	for i := range hs {
		if hs[i] != hd[i] {
			t.Errorf("table %d: sparse %d != dense %d", i, hs[i], hd[i])
		}
	}
}

func TestDWTALocality(t *testing.T) {
	// Near-duplicate vectors must collide in far more tables than unrelated
	// vectors — the property SLIDE's sampling relies on.
	dim := 128
	d := mustDWTA(t, DWTAConfig{K: 2, L: 50, Dim: dim, Seed: 31})
	rng := rand.New(rand.NewPCG(9, 10))

	base := make([]float32, dim)
	for i := range base {
		base[i] = float32(rng.NormFloat64())
	}
	near := append([]float32(nil), base...)
	for i := range near {
		near[i] += float32(rng.NormFloat64()) * 0.01
	}
	far := make([]float32, dim)
	for i := range far {
		far[i] = float32(rng.NormFloat64())
	}

	hb := make([]uint32, 50)
	hn := make([]uint32, 50)
	hf := make([]uint32, 50)
	d.HashDense(base, hb)
	d.HashDense(near, hn)
	d.HashDense(far, hf)

	nearColl, farColl := 0, 0
	for i := range hb {
		if hb[i] == hn[i] {
			nearColl++
		}
		if hb[i] == hf[i] {
			farColl++
		}
	}
	if nearColl <= farColl {
		t.Errorf("locality violated: near collisions %d <= far collisions %d", nearColl, farColl)
	}
	if nearColl < 25 { // 1% perturbation should preserve most bin winners
		t.Errorf("near-duplicate collided in only %d/50 tables", nearColl)
	}
}

func TestDWTADensification(t *testing.T) {
	// An extremely sparse vector leaves most bins empty; the hash must still
	// be well-defined, deterministic, and equal for equal inputs.
	d := mustDWTA(t, DWTAConfig{K: 6, L: 30, Dim: 100000, Seed: 41})
	v := sparse.Vector{Indices: []int32{12345}, Values: []float32{1.5}}
	h1 := make([]uint32, 30)
	h2 := make([]uint32, 30)
	d.Hash(v, h1)
	d.Hash(v, h2)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("densified hash is not deterministic")
		}
	}
	// The all-zero vector (no entries at all) must not panic or loop.
	d.Hash(sparse.Vector{}, h1)
}

func TestDWTAOutOfRangePanics(t *testing.T) {
	d := mustDWTA(t, DWTAConfig{K: 2, L: 2, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range feature did not panic")
		}
	}()
	d.Hash(sparse.Vector{Indices: []int32{10}, Values: []float32{1}}, make([]uint32, 2))
}

func TestDWTAShortOutPanics(t *testing.T) {
	d := mustDWTA(t, DWTAConfig{K: 2, L: 4, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("short out slice did not panic")
		}
	}()
	d.Hash(sparse.Vector{Indices: []int32{1}, Values: []float32{1}}, make([]uint32, 3))
}

func TestDWTAPermutationCoversAllPositions(t *testing.T) {
	// Every position must be backed by a feature in [0, dim); every feature
	// in the inverse map must point back at its position.
	d := mustDWTA(t, DWTAConfig{K: 3, L: 7, Dim: 29, Seed: 13})
	positions := 3 * 7 * 8
	if len(d.perm) != positions {
		t.Fatalf("perm has %d positions, want %d", len(d.perm), positions)
	}
	for p, f := range d.perm {
		if f < 0 || int(f) >= 29 {
			t.Fatalf("position %d maps to invalid feature %d", p, f)
		}
	}
	covered := 0
	for f := 0; f < 29; f++ {
		for _, p := range d.featPos[d.featStart[f]:d.featStart[f+1]] {
			if d.perm[p] != int32(f) {
				t.Fatalf("inverse map broken: feature %d lists position %d which maps to %d",
					f, p, d.perm[p])
			}
			covered++
		}
	}
	if covered != positions {
		t.Errorf("inverse map covers %d positions, want %d", covered, positions)
	}
}
