package lsh

import "fmt"

// BucketPolicy selects how a full bucket absorbs a new insertion.
type BucketPolicy int

const (
	// FIFO overwrites the oldest entry (SLIDE's default policy).
	FIFO BucketPolicy = iota
	// Reservoir keeps a uniform sample of everything ever inserted.
	Reservoir
)

// String implements fmt.Stringer.
func (p BucketPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Reservoir:
		return "reservoir"
	default:
		return "unknown"
	}
}

// Table is one LSH hash table: 2^bits buckets of fixed capacity holding
// neuron ids. Buckets are allocated lazily (the bucket-space is huge and
// mostly empty under DWTA's 18-bit fingerprints — the original SLIDE
// pre-allocated it all, which is part of its memory bloat).
//
// Insert requires external synchronization; Query is safe concurrently with
// other Queries. TableSet provides the rebuild-vs-query locking.
type Table struct {
	bits      int
	mask      uint32
	bucketCap int
	policy    BucketPolicy
	seed      uint64

	buckets [][]int32
	counts  []uint32 // lifetime insert count per bucket
}

// NewTable builds a table with 2^bits buckets of capacity bucketCap.
func NewTable(bits, bucketCap int, policy BucketPolicy, seed uint64) *Table {
	if bits <= 0 || bits > 30 {
		panic(fmt.Sprintf("lsh: table bits %d out of range (0,30]", bits))
	}
	if bucketCap <= 0 {
		panic(fmt.Sprintf("lsh: bucket capacity %d must be positive", bucketCap))
	}
	n := 1 << bits
	return &Table{
		bits:      bits,
		mask:      uint32(n - 1),
		bucketCap: bucketCap,
		policy:    policy,
		seed:      seed,
		buckets:   make([][]int32, n),
		counts:    make([]uint32, n),
	}
}

// Insert places id into the bucket addressed by fingerprint h (masked to the
// table's bucket space).
func (t *Table) Insert(id int32, h uint32) {
	b := h & t.mask
	n := t.counts[b]
	t.counts[b] = n + 1
	bucket := t.buckets[b]
	if len(bucket) < t.bucketCap {
		if bucket == nil {
			bucket = make([]int32, 0, min(4, t.bucketCap))
		}
		t.buckets[b] = append(bucket, id)
		return
	}
	switch t.policy {
	case FIFO:
		bucket[n%uint32(t.bucketCap)] = id
	case Reservoir:
		// Stateless reservoir sampling: position derived deterministically
		// from (seed, bucket, lifetime count), uniform over [0, n].
		j := splitmix64(t.seed^uint64(b)<<32^uint64(n)) % uint64(n+1)
		if j < uint64(t.bucketCap) {
			bucket[j] = id
		}
	}
}

// Query returns the bucket addressed by h. The returned slice aliases table
// storage and must not be mutated or retained across a rebuild.
func (t *Table) Query(h uint32) []int32 {
	return t.buckets[h&t.mask]
}

// Clone deep-copies the table: the clone's buckets share no storage with
// the original, so the two evolve independently. Lifetime insert counts are
// copied too, so Serialize(clone) is byte-identical to serializing the
// original at clone time — replication ships table snapshots, and a count
// below a bucket's population would be rejected on deserialize as corrupt.
// The caller provides synchronization against concurrent Inserts (TableSet
// clones under its read lock).
func (t *Table) Clone() *Table {
	c := &Table{
		bits:      t.bits,
		mask:      t.mask,
		bucketCap: t.bucketCap,
		policy:    t.policy,
		seed:      t.seed,
		buckets:   make([][]int32, len(t.buckets)),
		counts:    append([]uint32(nil), t.counts...),
	}
	for i, b := range t.buckets {
		if len(b) > 0 {
			c.buckets[i] = append([]int32(nil), b...)
		}
	}
	return c
}

// Clear empties every bucket, keeping allocated capacity for the next build.
func (t *Table) Clear() {
	for i := range t.buckets {
		if t.buckets[i] != nil {
			t.buckets[i] = t.buckets[i][:0]
		}
	}
	clear(t.counts)
}

// Buckets returns the total number of buckets (2^bits).
func (t *Table) Buckets() int { return len(t.buckets) }

// Occupancy returns the number of non-empty buckets and the number of stored
// ids (post-eviction).
func (t *Table) Occupancy() (nonEmpty, stored int) {
	for _, b := range t.buckets {
		if len(b) > 0 {
			nonEmpty++
			stored += len(b)
		}
	}
	return nonEmpty, stored
}
