package lsh

import (
	"fmt"
	"runtime"
	"sync"
)

// TableSet owns the L hash tables of one LSH-sampled layer plus the hasher
// feeding them. It serializes rebuilds against queries with a read-write
// lock: HOGWILD threads query concurrently under the read lock while the
// periodic re-hashing of updated neurons takes the write lock (§2
// "Backpropagation and Hash Tables Update").
type TableSet struct {
	hasher Hasher
	tables []*Table

	mu sync.RWMutex

	hashBuf sync.Pool // *[]uint32 scratch of length L
}

// NewTableSet builds the L tables declared by the hasher.
func NewTableSet(h Hasher, bucketCap int, policy BucketPolicy, seed uint64) *TableSet {
	ts := &TableSet{hasher: h}
	ts.tables = make([]*Table, h.Tables())
	for i := range ts.tables {
		ts.tables[i] = NewTable(h.Bits(), bucketCap, policy, splitmix64(seed^uint64(i)))
	}
	ts.hashBuf.New = func() any {
		b := make([]uint32, h.Tables())
		return &b
	}
	return ts
}

// Hasher returns the hasher feeding the tables.
func (ts *TableSet) Hasher() Hasher { return ts.hasher }

// Clone returns a deep copy of the current table contents under the read
// lock: a point-in-time snapshot that later rebuilds or inserts on the
// original never touch. The hasher is shared — hashers are immutable after
// construction and use pooled scratch, so concurrent queries through both
// sets are safe. Predictor snapshots query the clone while training keeps
// rebuilding the original.
func (ts *TableSet) Clone() *TableSet {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	c := &TableSet{hasher: ts.hasher}
	c.tables = make([]*Table, len(ts.tables))
	for i, t := range ts.tables {
		c.tables[i] = t.Clone()
	}
	c.hashBuf.New = func() any {
		b := make([]uint32, ts.hasher.Tables())
		return &b
	}
	return c
}

// Tables returns L.
func (ts *TableSet) Tables() int { return len(ts.tables) }

// InsertDense hashes one neuron's weight vector and inserts its id into all
// L tables. It takes the write lock; prefer RebuildDense for bulk work.
func (ts *TableSet) InsertDense(id int32, weights []float32) {
	bp := ts.hashBuf.Get().(*[]uint32)
	ts.hasher.HashDense(weights, *bp)
	ts.mu.Lock()
	for t, table := range ts.tables {
		table.Insert(id, (*bp)[t])
	}
	ts.mu.Unlock()
	ts.hashBuf.Put(bp)
}

// RebuildDense clears all tables and re-inserts neurons [0, n), reading each
// neuron's weight vector through row. row receives a per-worker scratch
// buffer of length bufLen it may use to materialize the vector (e.g. to
// expand bfloat16 weights); it can also ignore the buffer and return a
// direct view. Hashing is parallelized across workers in chunks; insertion
// is serialized per chunk under the write lock so queries only ever see a
// consistent (possibly partially re-filled) table. workers <= 0 uses
// GOMAXPROCS.
func (ts *TableSet) RebuildDense(n, bufLen int, row func(i int, buf []float32) []float32, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ts.mu.Lock()
	for _, t := range ts.tables {
		t.Clear()
	}
	ts.mu.Unlock()

	const chunk = 2048
	l := len(ts.tables)
	hashes := make([]uint32, chunk*l)

	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		cnt := hi - lo

		// Parallel hash of the chunk.
		var wg sync.WaitGroup
		per := (cnt + workers - 1) / workers
		for w := 0; w < workers; w++ {
			s := lo + w*per
			e := min(s+per, hi)
			if s >= e {
				break
			}
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				buf := make([]float32, bufLen)
				for i := s; i < e; i++ {
					ts.hasher.HashDense(row(i, buf), hashes[(i-lo)*l:(i-lo+1)*l])
				}
			}(s, e)
		}
		wg.Wait()

		// Serial insert under the write lock.
		ts.mu.Lock()
		for i := 0; i < cnt; i++ {
			id := int32(lo + i)
			hs := hashes[i*l : (i+1)*l]
			for t, table := range ts.tables {
				table.Insert(id, hs[t])
			}
		}
		ts.mu.Unlock()
	}
}

// RebuildRange clears all tables and re-inserts only neurons [lo, hi),
// keeping their global ids. A sharded output layer gives each shard its own
// TableSet rebuilt over just the rows it owns; queries then return global
// ids directly. Insertion order is ascending id, exactly as RebuildDense,
// so table contents are a pure function of (lo, hi, weights) — independent
// of the worker count used for hashing.
func (ts *TableSet) RebuildRange(lo, hi, bufLen int, row func(i int, buf []float32) []float32, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ts.mu.Lock()
	for _, t := range ts.tables {
		t.Clear()
	}
	ts.mu.Unlock()

	const chunk = 2048
	l := len(ts.tables)
	hashes := make([]uint32, chunk*l)

	for cl := lo; cl < hi; cl += chunk {
		ch := min(cl+chunk, hi)
		cnt := ch - cl

		var wg sync.WaitGroup
		per := (cnt + workers - 1) / workers
		for w := 0; w < workers; w++ {
			s := cl + w*per
			e := min(s+per, ch)
			if s >= e {
				break
			}
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				buf := make([]float32, bufLen)
				for i := s; i < e; i++ {
					ts.hasher.HashDense(row(i, buf), hashes[(i-cl)*l:(i-cl+1)*l])
				}
			}(s, e)
		}
		wg.Wait()

		ts.mu.Lock()
		for i := 0; i < cnt; i++ {
			id := int32(cl + i)
			hs := hashes[i*l : (i+1)*l]
			for t, table := range ts.tables {
				table.Insert(id, hs[t])
			}
		}
		ts.mu.Unlock()
	}
}

// QueryDense hashes a dense activation vector and calls visit for every id
// found across the L tables' matching buckets. Ids repeat across tables;
// callers dedup (see Dedup). visit runs under the read lock and must not
// call back into the TableSet.
func (ts *TableSet) QueryDense(act []float32, visit func(id int32)) {
	bp := ts.hashBuf.Get().(*[]uint32)
	ts.hasher.HashDense(act, *bp)
	ts.query(*bp, visit)
	ts.hashBuf.Put(bp)
}

// HashDense hashes a dense activation vector into hs (length L) without
// querying. Sharded execution hashes each sample once and then probes every
// shard's tables with QueryHashes, instead of re-hashing per shard.
func (ts *TableSet) HashDense(act []float32, hs []uint32) {
	ts.hasher.HashDense(act, hs)
}

// QueryHashes is QueryDense with the hashing already done: hs holds one
// bucket hash per table, as produced by HashDense with the same hasher
// parameters. Visit order (table-major, bucket order within) matches
// QueryDense exactly.
func (ts *TableSet) QueryHashes(hs []uint32, visit func(id int32)) {
	ts.query(hs, visit)
}

func (ts *TableSet) query(hs []uint32, visit func(id int32)) {
	ts.mu.RLock()
	for t, table := range ts.tables {
		for _, id := range table.Query(hs[t]) {
			visit(id)
		}
	}
	ts.mu.RUnlock()
}

// Stats summarizes table occupancy for diagnostics.
type Stats struct {
	Tables        int
	BucketsPer    int
	NonEmpty      int // across all tables
	Stored        int // ids currently stored across all tables
	MeanPerBucket float64
}

// Stats returns current occupancy. Takes the read lock.
func (ts *TableSet) Stats() Stats {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	s := Stats{Tables: len(ts.tables)}
	if len(ts.tables) > 0 {
		s.BucketsPer = ts.tables[0].Buckets()
	}
	for _, t := range ts.tables {
		ne, st := t.Occupancy()
		s.NonEmpty += ne
		s.Stored += st
	}
	if s.NonEmpty > 0 {
		s.MeanPerBucket = float64(s.Stored) / float64(s.NonEmpty)
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("lsh: %d tables x %d buckets, %d non-empty, %d stored (%.1f/bucket)",
		s.Tables, s.BucketsPer, s.NonEmpty, s.Stored, s.MeanPerBucket)
}

// Dedup deduplicates neuron ids across the L tables of one query using a
// generation-stamped array: O(1) per candidate, no clearing between queries.
// Each HOGWILD worker owns one Dedup.
type Dedup struct {
	stamp []uint32
	cur   uint32
}

// NewDedup builds a deduper for ids in [0, n).
func NewDedup(n int) *Dedup {
	return &Dedup{stamp: make([]uint32, n)}
}

// Begin opens a new deduplication round.
func (d *Dedup) Begin() {
	d.cur++
	if d.cur == 0 { // wrapped: stamps from 2^32 rounds ago could collide
		clear(d.stamp)
		d.cur = 1
	}
}

// Seen reports whether id was already offered this round, marking it.
func (d *Dedup) Seen(id int32) bool {
	if d.stamp[id] == d.cur {
		return true
	}
	d.stamp[id] = d.cur
	return false
}
