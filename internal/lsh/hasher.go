// Package lsh implements the locality-sensitive-hashing substrate of SLIDE:
// the DWTA (Densified Winner-Take-All) and SimHash families, fixed-capacity
// hash tables with FIFO/reservoir buckets, and the TableSet that maps neuron
// ids to buckets and answers active-set queries (§2 of the paper, with the
// vectorized DWTA bin-max of §4.3.3).
package lsh

import (
	"github.com/slide-cpu/slide/internal/sparse"
)

// Hasher computes, for one input vector, the bucket fingerprint in each of
// L hash tables. Implementations are safe for concurrent use: HOGWILD
// threads hash samples in parallel while rebuild threads hash neurons.
type Hasher interface {
	// Tables returns L, the number of hash tables the hasher feeds.
	Tables() int
	// Bits returns the number of bucket-index bits produced per table.
	// Table capacity is 2^Bits buckets.
	Bits() int
	// Hash writes one bucket index per table into out (len >= Tables())
	// for a sparse input vector.
	Hash(v sparse.Vector, out []uint32)
	// HashDense is the dense-vector path, used for hashing neuron weight
	// vectors (dim = fan-in of the layer) and dense activations.
	HashDense(vals []float32, out []uint32)
}

// splitmix64 is the 64-bit finalizer used to derive per-(table,bit,feature)
// pseudo-random decisions without storing projection matrices.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
