package lsh

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Table/TableSet serialization: the dynamic bucket state only (stored ids
// plus lifetime insert counts). Shape parameters (bits, capacity, policy,
// seed) are construction-time configuration the owner re-derives, so a
// deserialize targets a freshly constructed, identically shaped table.
//
// This exists for exact training resume: table contents are a pure function
// of the weights at the *last scheduled rebuild*, which a checkpoint loader
// cannot re-derive from the current weights — so the network checkpoint
// carries the state itself. Only non-empty buckets are written (an insert
// always leaves its bucket non-empty, so count > 0 implies occupancy), which
// keeps the payload proportional to stored ids, not bucket space.

// Serialize writes the table's bucket state. The caller provides
// synchronization against concurrent Inserts.
func (t *Table) Serialize(w io.Writer) error {
	nonEmpty, _ := t.Occupancy()
	if err := binary.Write(w, binary.LittleEndian, uint64(nonEmpty)); err != nil {
		return fmt.Errorf("lsh: writing table header: %w", err)
	}
	for i, b := range t.buckets {
		if len(b) == 0 {
			continue
		}
		hdr := [3]uint32{uint32(i), t.counts[i], uint32(len(b))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return fmt.Errorf("lsh: writing bucket header: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return fmt.Errorf("lsh: writing bucket ids: %w", err)
		}
	}
	return nil
}

// Deserialize replaces the table's bucket state with a previously serialized
// one. The table must have the same shape (bits, capacity) as the writer.
func (t *Table) Deserialize(r io.Reader) error {
	t.Clear()
	var nonEmpty uint64
	if err := binary.Read(r, binary.LittleEndian, &nonEmpty); err != nil {
		return fmt.Errorf("lsh: reading table header: %w", err)
	}
	if nonEmpty > uint64(len(t.buckets)) {
		return fmt.Errorf("lsh: table declares %d non-empty buckets of %d", nonEmpty, len(t.buckets))
	}
	for k := uint64(0); k < nonEmpty; k++ {
		var hdr [3]uint32
		if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
			return fmt.Errorf("lsh: reading bucket header: %w", err)
		}
		idx, count, n := hdr[0], hdr[1], hdr[2]
		if int(idx) >= len(t.buckets) {
			return fmt.Errorf("lsh: bucket index %d out of range [0,%d)", idx, len(t.buckets))
		}
		if int(n) > t.bucketCap || n == 0 || uint64(n) > uint64(count) {
			return fmt.Errorf("lsh: bucket %d declares %d ids (cap %d, count %d)", idx, n, t.bucketCap, count)
		}
		ids := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
			return fmt.Errorf("lsh: reading bucket ids: %w", err)
		}
		t.buckets[idx] = ids
		t.counts[idx] = count
	}
	return nil
}

// TableSet stream format: a sentinel (an impossible table count) announces
// the checksummed layout — sentinel, format version, table count, then each
// table's payload followed by its own CRC32C trailer. Per-table checksums
// localize damage to one table even when the set is embedded in a larger
// container (the network checkpoint today, delta replication streams
// later). Streams that start with a plain count (pre-checksum writers, i.e.
// checkpoint v2) are read through the legacy path unchanged.

const (
	setSentinel  = ^uint64(0)
	setFormatCRC = uint64(1)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum is the sentinel wrapped by per-table checksum mismatches.
var ErrChecksum = errors.New("lsh: table checksum mismatch")

// Serialize writes all L tables' bucket state under the read lock, each
// table followed by a CRC32C of its payload.
func (ts *TableSet) Serialize(w io.Writer) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	for _, v := range []uint64{setSentinel, setFormatCRC, uint64(len(ts.tables))} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("lsh: writing table set header: %w", err)
		}
	}
	var buf bytes.Buffer
	for i, t := range ts.tables {
		buf.Reset()
		if err := t.Serialize(&buf); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("lsh: writing table %d: %w", i, err)
		}
		if err := binary.Write(w, binary.LittleEndian, crc32.Checksum(buf.Bytes(), castagnoli)); err != nil {
			return fmt.Errorf("lsh: writing table %d checksum: %w", i, err)
		}
	}
	return nil
}

// Deserialize replaces all L tables' bucket state under the write lock,
// verifying each table's CRC32C trailer (checksummed format) or reading the
// legacy unchecksummed layout, auto-detected from the header. The set must
// be identically shaped (same hasher configuration) as the writer. A
// checksum mismatch is reported as an error wrapping ErrChecksum, naming
// the damaged table.
func (ts *TableSet) Deserialize(r io.Reader) error {
	var first uint64
	if err := binary.Read(r, binary.LittleEndian, &first); err != nil {
		return fmt.Errorf("lsh: reading table set header: %w", err)
	}
	checked := first == setSentinel
	n := first
	if checked {
		var version uint64
		if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
			return fmt.Errorf("lsh: reading table set header: %w", err)
		}
		if version != setFormatCRC {
			return fmt.Errorf("lsh: unsupported table set format %d", version)
		}
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("lsh: reading table set header: %w", err)
		}
	}
	if int(n) != len(ts.tables) {
		return fmt.Errorf("lsh: checkpoint has %d tables, set has %d", n, len(ts.tables))
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i, t := range ts.tables {
		if !checked {
			if err := t.Deserialize(r); err != nil {
				return err
			}
			continue
		}
		// Tee the table payload through a checksum so the trailer can be
		// verified against exactly the bytes the parse consumed.
		crc := crc32.New(castagnoli)
		if err := t.Deserialize(io.TeeReader(r, crc)); err != nil {
			return err
		}
		var want uint32
		if err := binary.Read(r, binary.LittleEndian, &want); err != nil {
			return fmt.Errorf("lsh: reading table %d checksum: %w", i, err)
		}
		if got := crc.Sum32(); got != want {
			return fmt.Errorf("lsh: table %d: computed %#x, stored %#x: %w", i, got, want, ErrChecksum)
		}
	}
	return nil
}
