package lsh

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Table/TableSet serialization: the dynamic bucket state only (stored ids
// plus lifetime insert counts). Shape parameters (bits, capacity, policy,
// seed) are construction-time configuration the owner re-derives, so a
// deserialize targets a freshly constructed, identically shaped table.
//
// This exists for exact training resume: table contents are a pure function
// of the weights at the *last scheduled rebuild*, which a checkpoint loader
// cannot re-derive from the current weights — so the network checkpoint
// carries the state itself. Only non-empty buckets are written (an insert
// always leaves its bucket non-empty, so count > 0 implies occupancy), which
// keeps the payload proportional to stored ids, not bucket space.

// Serialize writes the table's bucket state. The caller provides
// synchronization against concurrent Inserts.
func (t *Table) Serialize(w io.Writer) error {
	nonEmpty, _ := t.Occupancy()
	if err := binary.Write(w, binary.LittleEndian, uint64(nonEmpty)); err != nil {
		return fmt.Errorf("lsh: writing table header: %w", err)
	}
	for i, b := range t.buckets {
		if len(b) == 0 {
			continue
		}
		hdr := [3]uint32{uint32(i), t.counts[i], uint32(len(b))}
		if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
			return fmt.Errorf("lsh: writing bucket header: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, b); err != nil {
			return fmt.Errorf("lsh: writing bucket ids: %w", err)
		}
	}
	return nil
}

// Deserialize replaces the table's bucket state with a previously serialized
// one. The table must have the same shape (bits, capacity) as the writer.
func (t *Table) Deserialize(r io.Reader) error {
	t.Clear()
	var nonEmpty uint64
	if err := binary.Read(r, binary.LittleEndian, &nonEmpty); err != nil {
		return fmt.Errorf("lsh: reading table header: %w", err)
	}
	if nonEmpty > uint64(len(t.buckets)) {
		return fmt.Errorf("lsh: table declares %d non-empty buckets of %d", nonEmpty, len(t.buckets))
	}
	for k := uint64(0); k < nonEmpty; k++ {
		var hdr [3]uint32
		if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
			return fmt.Errorf("lsh: reading bucket header: %w", err)
		}
		idx, count, n := hdr[0], hdr[1], hdr[2]
		if int(idx) >= len(t.buckets) {
			return fmt.Errorf("lsh: bucket index %d out of range [0,%d)", idx, len(t.buckets))
		}
		if int(n) > t.bucketCap || n == 0 || uint64(n) > uint64(count) {
			return fmt.Errorf("lsh: bucket %d declares %d ids (cap %d, count %d)", idx, n, t.bucketCap, count)
		}
		ids := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
			return fmt.Errorf("lsh: reading bucket ids: %w", err)
		}
		t.buckets[idx] = ids
		t.counts[idx] = count
	}
	return nil
}

// Serialize writes all L tables' bucket state under the read lock.
func (ts *TableSet) Serialize(w io.Writer) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if err := binary.Write(w, binary.LittleEndian, uint64(len(ts.tables))); err != nil {
		return fmt.Errorf("lsh: writing table set header: %w", err)
	}
	for _, t := range ts.tables {
		if err := t.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize replaces all L tables' bucket state under the write lock. The
// set must be identically shaped (same hasher configuration) as the writer.
func (ts *TableSet) Deserialize(r io.Reader) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("lsh: reading table set header: %w", err)
	}
	if int(n) != len(ts.tables) {
		return fmt.Errorf("lsh: checkpoint has %d tables, set has %d", n, len(ts.tables))
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.tables {
		if err := t.Deserialize(r); err != nil {
			return err
		}
	}
	return nil
}
