package lsh

import (
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

func mustDOPH(t *testing.T, cfg DOPHConfig) *DOPH {
	t.Helper()
	d, err := NewDOPH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDOPHConfigValidation(t *testing.T) {
	bad := []DOPHConfig{
		{K: 0, L: 2, Dim: 10},
		{K: 2, L: 0, Dim: 10},
		{K: 2, L: 2, Dim: 0},
		{K: 15, L: 2, Dim: 10, BitsPerBin: 3}, // 45 bits
	}
	for i, cfg := range bad {
		if _, err := NewDOPH(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	d := mustDOPH(t, DOPHConfig{K: 3, L: 4, Dim: 100, Seed: 1})
	if d.Bits() != 9 || d.Tables() != 4 || d.Dim() != 100 {
		t.Errorf("accessors: %d %d %d", d.Bits(), d.Tables(), d.Dim())
	}
}

func setVec(elems ...int32) sparse.Vector {
	vals := make([]float32, len(elems))
	for i := range vals {
		vals[i] = 1
	}
	return sparse.Vector{Indices: elems, Values: vals}
}

func TestDOPHDeterministicAndValueInvariant(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 3, L: 10, Dim: 200, Seed: 5})
	a := sparse.Vector{Indices: []int32{3, 50, 120}, Values: []float32{1, 1, 1}}
	b := sparse.Vector{Indices: []int32{3, 50, 120}, Values: []float32{9, -2, 0.1}}
	ha := make([]uint32, 10)
	hb := make([]uint32, 10)
	d.Hash(a, ha)
	d.Hash(b, hb)
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatal("DOPH must depend only on the support set, not values")
		}
	}
	limit := uint32(1) << d.Bits()
	for _, h := range ha {
		if h >= limit {
			t.Fatalf("hash %d out of bucket range %d", h, limit)
		}
	}
}

func TestDOPHJaccardLocality(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 1, L: 400, Dim: 1000, Seed: 7})
	rng := rand.New(rand.NewPCG(1, 2))
	base := make([]int32, 0, 50)
	used := map[int32]bool{}
	for len(base) < 50 {
		f := int32(rng.IntN(1000))
		if !used[f] {
			used[f] = true
			base = append(base, f)
		}
	}
	// near: 90% overlap; far: disjoint.
	near := append([]int32(nil), base[:45]...)
	for len(near) < 50 {
		f := int32(rng.IntN(1000))
		if !used[f] {
			used[f] = true
			near = append(near, f)
		}
	}
	far := make([]int32, 0, 50)
	for len(far) < 50 {
		f := int32(rng.IntN(1000))
		if !used[f] {
			used[f] = true
			far = append(far, f)
		}
	}
	hb := make([]uint32, 400)
	hn := make([]uint32, 400)
	hf := make([]uint32, 400)
	d.Hash(setVec(base...), hb)
	d.Hash(setVec(near...), hn)
	d.Hash(setVec(far...), hf)
	nearColl, farColl := 0, 0
	for i := range hb {
		if hb[i] == hn[i] {
			nearColl++
		}
		if hb[i] == hf[i] {
			farColl++
		}
	}
	if nearColl <= farColl {
		t.Errorf("Jaccard locality violated: near %d <= far %d of 400", nearColl, farColl)
	}
	if nearColl < 200 { // J(base, near) ≈ 0.82, collisions should dominate
		t.Errorf("near set collided in only %d/400 tables", nearColl)
	}
}

func TestDOPHSparseDenseConsistency(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 2, L: 8, Dim: 64, Seed: 9})
	v := setVec(1, 17, 40, 63)
	hs := make([]uint32, 8)
	hd := make([]uint32, 8)
	d.Hash(v, hs)
	d.HashDense(v.Dense(64), hd)
	for i := range hs {
		if hs[i] != hd[i] {
			t.Errorf("table %d: sparse %d != dense %d", i, hs[i], hd[i])
		}
	}
}

func TestDOPHEmptySet(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 2, L: 4, Dim: 32, Seed: 11})
	out := make([]uint32, 4)
	d.Hash(sparse.Vector{}, out) // must not panic or loop forever
}

func TestDOPHOutOfRangePanics(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 2, L: 2, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range feature did not panic")
		}
	}()
	d.Hash(setVec(10), make([]uint32, 2))
}

func TestDOPHShortOutPanics(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 2, L: 4, Dim: 10, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("short out slice did not panic")
		}
	}()
	d.Hash(setVec(1), make([]uint32, 3))
}

func TestDOPHWorksInTableSet(t *testing.T) {
	d := mustDOPH(t, DOPHConfig{K: 2, L: 6, Dim: 48, Seed: 13})
	ts := NewTableSet(d, 32, FIFO, 3)
	rng := rand.New(rand.NewPCG(5, 6))
	n := 30
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = make([]float32, 48)
		for j := 0; j < 8; j++ {
			rows[i][rng.IntN(48)] = 1
		}
	}
	ts.RebuildDense(n, 48, func(i int, _ []float32) []float32 { return rows[i] }, 2)
	dedup := NewDedup(n)
	found := 0
	for i := range rows {
		dedup.Begin()
		ts.QueryDense(rows[i], func(id int32) {
			if !dedup.Seen(id) && id == int32(i) {
				found++
			}
		})
	}
	if found < n {
		t.Errorf("only %d/%d vectors retrieved themselves", found, n)
	}
}
