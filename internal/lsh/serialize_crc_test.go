package lsh

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// testSet builds a small, deterministic TableSet with a few populated
// buckets per table.
func testSet(t *testing.T) *TableSet {
	t.Helper()
	h, err := NewSimHash(SimHashConfig{K: 4, L: 3, Dim: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTableSet(h, 8, FIFO, 11)
	for i, tbl := range ts.tables {
		for id := int32(0); id < 20; id++ {
			tbl.Insert(id, uint32(int32(i)+id)%uint32(tbl.Buckets()))
		}
	}
	return ts
}

// emptyLike builds an identically shaped, unpopulated set.
func emptyLike(t *testing.T) *TableSet {
	t.Helper()
	h, err := NewSimHash(SimHashConfig{K: 4, L: 3, Dim: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return NewTableSet(h, 8, FIFO, 11)
}

func sameContents(a, b *TableSet) bool {
	for i := range a.tables {
		ta, tb := a.tables[i], b.tables[i]
		for h := uint32(0); int(h) < ta.Buckets(); h++ {
			if !bytes.Equal(int32Bytes(ta.Query(h)), int32Bytes(tb.Query(h))) {
				return false
			}
		}
	}
	return true
}

func int32Bytes(ids []int32) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, ids)
	return buf.Bytes()
}

func TestTableSetChecksummedRoundTrip(t *testing.T) {
	src := testSet(t)
	var buf bytes.Buffer
	if err := src.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	dst := emptyLike(t)
	if err := dst.Deserialize(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !sameContents(src, dst) {
		t.Fatal("round-tripped table set differs from source")
	}
}

func TestTableSetChecksumDetectsBitFlip(t *testing.T) {
	src := testSet(t)
	var buf bytes.Buffer
	if err := src.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the second table's first stored id: past the 24-byte
	// set header, the whole first table (payload + 4-byte CRC), the 8-byte
	// table header, and the 12-byte bucket header. An id flip parses fine —
	// only the checksum can catch it.
	var t0 bytes.Buffer
	if err := src.tables[0].Serialize(&t0); err != nil {
		t.Fatal(err)
	}
	pos := 24 + t0.Len() + 4 + 8 + 12
	raw := buf.Bytes()
	raw[pos] ^= 0x40
	err := emptyLike(t).Deserialize(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("bit-flipped stream deserialized without error")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("error %v does not wrap ErrChecksum", err)
	}
	if !strings.Contains(err.Error(), "table 1") {
		t.Fatalf("error %q does not name the damaged table", err)
	}
}

func TestTableSetLegacyFormatStillLoads(t *testing.T) {
	src := testSet(t)
	// Hand-write the pre-checksum layout: plain count, then raw payloads.
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint64(len(src.tables))); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range src.tables {
		if err := tbl.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
	}
	dst := emptyLike(t)
	if err := dst.Deserialize(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	if !sameContents(src, dst) {
		t.Fatal("legacy round-trip differs from source")
	}
}

func TestTableSetWrongShapeRejected(t *testing.T) {
	src := testSet(t)
	var buf bytes.Buffer
	if err := src.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := NewSimHash(SimHashConfig{K: 4, L: 5, Dim: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewTableSet(h, 8, FIFO, 11).Deserialize(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched table count accepted")
	}
}
