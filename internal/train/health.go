package train

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/health"
)

// GuardSetter is implemented by steppers whose per-step numerical guards can
// be toggled (network.Network). A session with Config.Health set switches
// guards on for its duration; steppers without the interface still get the
// loss-based detectors (spike, divergence, non-finite loss).
type GuardSetter interface {
	SetGuards(on bool)
}

// HealthError is the typed abort a session returns when the health monitor
// flags a red batch. The session stops before the offending step's
// checkpoint and snapshot work, so the newest on-disk checkpoint predates
// the fault — exactly what the rollback loop reloads.
type HealthError struct {
	Event health.Event
}

// Error implements error.
func (e *HealthError) Error() string {
	return fmt.Sprintf("train: health abort: %s", e.Event)
}
