// Package train is the training-session engine under the public
// slide.Trainer: a deterministic batch loop over a dataset.Source with typed
// lifecycle hooks, per-step learning-rate schedules, a checkpoint-every-N
// schedule with atomic file writes, periodic snapshot callbacks, early
// stopping, and context cancellation.
//
// It operates on the Stepper interface (implemented by network.Network and,
// via a thin adapter, the dense full-softmax baseline), so the public API,
// the cmds, and the experiment harness all drive the same loop.
//
// Determinism contract: pass p of a session starts with src.Reset(seed)
// where seed defaults to Step()+1 at pass start — exactly the legacy
// Model.TrainEpoch seeding rule — so a single-worker session is bit-identical
// to the historical epoch loop, and a resumed session (Resume: true, Sized
// source) fast-forwards to its mid-epoch position and reproduces the
// uninterrupted run bit-for-bit.
package train

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Stepper is the trainable surface the session drives.
type Stepper interface {
	// TrainBatch applies one optimizer step over the batch.
	TrainBatch(b sparse.Batch) network.BatchStats
	// Step returns the number of optimizer steps applied so far.
	Step() int64
}

// LRSetter is implemented by steppers whose learning rate can be changed
// between batches (network.Network). A Config with a Schedule requires it.
type LRSetter interface {
	SetLR(lr float64)
}

// Saver is implemented by steppers that can serialize a checkpoint
// (network.Network). A Config with checkpointing requires it.
type Saver interface {
	Save(w io.Writer) error
}

// Schedule maps a 1-based optimizer step to its learning rate. The schedule
// must be a pure function of the step so a resumed session re-derives the
// same trajectory.
type Schedule func(step int64) float64

// BatchInfo is delivered to OnBatch after every optimizer step.
type BatchInfo struct {
	// Step is the optimizer step count after this batch.
	Step int64
	// Epoch is the 0-based pass index within this session; Batch the 0-based
	// batch index within the pass.
	Epoch, Batch int
	// Stats are the batch's training statistics.
	Stats network.BatchStats
	// LR is the learning rate this step used (0 when no schedule is set and
	// the stepper's configured rate applied).
	LR float64
	// TrainTime is the wall-clock spent inside TrainBatch only — data
	// loading, hooks and evaluation are excluded, so harness timings stay
	// comparable to hand-rolled loops.
	TrainTime time.Duration
}

// EpochInfo is delivered to OnEpoch after every completed pass.
type EpochInfo struct {
	// Epoch is the 0-based pass index within this session.
	Epoch int
	// Batches is the number of batches the pass ran.
	Batches int
	// Stats aggregates the pass's batch statistics.
	Stats network.BatchStats
	// TrainTime is the summed TrainBatch wall-clock of the pass.
	TrainTime time.Duration
}

// CheckpointInfo is delivered to OnCheckpoint after a checkpoint file is
// atomically in place.
type CheckpointInfo struct {
	Step int64
	Path string
}

// Hooks are the session's typed lifecycle callbacks. All hooks run on the
// session goroutine, between optimizer steps, so they may read the model
// (evaluate, snapshot) without synchronization. Any hook may be nil.
//
// Per-step ordering: schedule LR → TrainBatch → OnBatch → checkpoint +
// OnCheckpoint → OnSnapshot. OnEpoch fires after the pass's last OnBatch
// (and its checkpoint/snapshot work); early stopping is evaluated after
// OnEpoch.
type Hooks struct {
	OnBatch      func(BatchInfo)
	OnEpoch      func(EpochInfo)
	OnCheckpoint func(CheckpointInfo)
	// OnSnapshot fires every SnapshotEvery steps; the caller (slide.Trainer)
	// turns it into a Predictor snapshot and publishes it.
	OnSnapshot func(step int64)
	// OnHealth fires when the health monitor flags a red batch, immediately
	// before the session aborts with *HealthError. Requires Config.Health.
	OnHealth func(health.Event)
}

// Config parameterizes one session.
type Config struct {
	// Epochs bounds the number of passes (0 = unbounded; the session then
	// runs until MaxSteps, early stopping, or cancellation).
	Epochs int
	// MaxSteps bounds the stepper's *total* optimizer step count (0 = none):
	// a resumed session with MaxSteps N+M that loaded a step-N checkpoint
	// runs M more steps.
	MaxSteps int64
	// LR is the per-step learning-rate schedule (nil = keep the stepper's
	// configured rate). Requires the stepper to implement LRSetter.
	LR Schedule
	// CheckpointPath + CheckpointEvery > 0 write an atomic checkpoint every
	// CheckpointEvery steps (and once more at session end if steps ran since
	// the last one). Requires the stepper to implement Saver.
	CheckpointPath  string
	CheckpointEvery int64
	// CheckpointRetain keeps that many last-good checkpoints: the newest at
	// CheckpointPath and older generations at path.1, path.2, … (see
	// RingPaths). 0 or 1 keeps only the primary. Opening the schedule also
	// sweeps crash debris — orphaned .tmp-* files and ring slots beyond the
	// retention bound.
	CheckpointRetain int
	// SnapshotEvery > 0 fires Hooks.OnSnapshot every that many steps.
	SnapshotEvery int64
	// EarlyStopPatience > 0 stops the session when the pass mean loss has
	// not improved by at least EarlyStopMinDelta for that many consecutive
	// passes.
	EarlyStopPatience int
	EarlyStopMinDelta float64
	// SeedFunc overrides the default pass-seed rule (Step()+1 at pass start,
	// the legacy TrainEpoch rule). The harness uses it to keep its historical
	// per-epoch seeding.
	SeedFunc func(pass int, stepAtPassStart int64) uint64
	// Resume fast-forwards a stepper with Step() > 0 to its deterministic
	// mid-epoch position before training (Sized sources only): the session
	// re-derives the interrupted pass's seed and skips the batches the
	// checkpointed run already consumed.
	Resume bool
	// Health enables the numerical-health monitor: per-batch NaN/Inf guard
	// counts (steppers implementing GuardSetter are switched on for the
	// session) plus EWMA loss-spike and divergence detection. A red batch
	// aborts the session with *HealthError before the step's checkpoint or
	// snapshot work, so poisoned weights are never persisted or published.
	Health *health.Config

	Hooks Hooks
}

// StopReason reports why a session ended.
type StopReason int

const (
	// StopCompleted: the configured number of passes finished.
	StopCompleted StopReason = iota
	// StopMaxSteps: the total-step bound was reached.
	StopMaxSteps
	// StopCanceled: the context was canceled — a requested, graceful stop,
	// not an error.
	StopCanceled
	// StopEarly: early stopping triggered.
	StopEarly
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopCompleted:
		return "completed"
	case StopMaxSteps:
		return "max-steps"
	case StopCanceled:
		return "canceled"
	case StopEarly:
		return "early-stop"
	default:
		return "unknown"
	}
}

// Report summarizes one session.
type Report struct {
	// Steps is the number of optimizer steps this session ran (not the
	// stepper's total); Epochs the number of *completed* passes.
	Steps  int64
	Epochs int
	// Stats aggregates every batch of the session.
	Stats network.BatchStats
	// TrainTime is the summed TrainBatch wall-clock.
	TrainTime time.Duration
	// Reason is why the session ended.
	Reason StopReason
	// LastCheckpoint is the step of the most recent checkpoint written by
	// this session (0 = none).
	LastCheckpoint int64
}

// Validate reports configuration errors against the stepper's capabilities.
func (c *Config) Validate(s Stepper) error {
	if c.Epochs < 0 {
		return fmt.Errorf("train: Epochs %d must be >= 0", c.Epochs)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("train: MaxSteps %d must be >= 0", c.MaxSteps)
	}
	if c.LR != nil {
		if _, ok := s.(LRSetter); !ok {
			return fmt.Errorf("train: LR schedule set but stepper cannot SetLR")
		}
	}
	if (c.CheckpointEvery > 0) != (c.CheckpointPath != "") {
		return fmt.Errorf("train: CheckpointPath and CheckpointEvery must be set together")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("train: CheckpointEvery %d must be >= 0", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 {
		if _, ok := s.(Saver); !ok {
			return fmt.Errorf("train: checkpointing set but stepper cannot Save")
		}
	}
	if c.CheckpointRetain < 0 {
		return fmt.Errorf("train: CheckpointRetain %d must be >= 0", c.CheckpointRetain)
	}
	if c.CheckpointRetain > 1 && c.CheckpointEvery == 0 {
		return fmt.Errorf("train: CheckpointRetain set without a checkpoint schedule")
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("train: SnapshotEvery %d must be >= 0", c.SnapshotEvery)
	}
	if c.SnapshotEvery > 0 && c.Hooks.OnSnapshot == nil {
		return fmt.Errorf("train: SnapshotEvery set without an OnSnapshot hook")
	}
	if c.EarlyStopPatience < 0 || c.EarlyStopMinDelta < 0 {
		return fmt.Errorf("train: early-stop parameters must be >= 0")
	}
	return nil
}

// atomicCheckpoint writes the stepper's checkpoint to path via a temp file
// and rename, so a crash mid-write never leaves a truncated checkpoint where
// a loadable one is expected. With retain > 1 the existing ring rotates down
// one slot just before the rename — only once the new checkpoint is fully
// written and synced, so a failed save leaves the ring untouched.
//
// The write stream and the pre-rename window are fault-injection points
// (checkpoint.write, checkpoint.rename). An injected fault stands in for a
// crash at that moment, so cleanup is deliberately skipped for it: the torn
// or orphaned temp file stays on disk exactly as a real kill would leave it,
// and the sweep/fallback machinery has real debris to recover from.
func atomicCheckpoint(sv Saver, path string, retain int) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("train: checkpoint: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		if !errors.Is(err, faultinject.ErrInjected) {
			os.Remove(tmp)
		}
		return fmt.Errorf("train: checkpoint: %w", err)
	}
	if err := sv.Save(faultinject.Writer(faultinject.PointCheckpointWrite, f)); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; match the 0644 a plain SaveFile produces so the
	// rename doesn't silently make the checkpoint owner-only.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("train: checkpoint: %w", err)
	}
	if err := faultinject.Hit(faultinject.PointCheckpointRename); err != nil {
		// Simulated crash between write and rename: the temp file is orphaned.
		return fmt.Errorf("train: checkpoint: %w", err)
	}
	if retain > 1 {
		if err := rotateRing(path, retain); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("train: checkpoint: %w", err)
	}
	return nil
}

// session is the loop state of one Run.
type session struct {
	cfg  Config
	s    Stepper
	src  dataset.Source
	rep  Report
	last int64 // step of the last checkpoint (0 = none yet this session)
	mon  *health.Monitor
}

// Run executes one training session. Cancellation via ctx is a graceful stop
// (Report.Reason == StopCanceled, nil error), checked between batches; a
// source or checkpoint failure aborts with the error and a partial report.
func Run(ctx context.Context, s Stepper, src dataset.Source, cfg Config) (Report, error) {
	if err := cfg.Validate(s); err != nil {
		return Report{}, err
	}
	// Sources holding resources (the streaming file reader) are released on
	// every exit path — cancellation and step bounds stop mid-pass, before
	// the source's own end-of-pass close would run. Closed sources accept a
	// later Reset, so the same source can drive another session.
	if c, ok := src.(io.Closer); ok {
		defer c.Close()
	}
	se := &session{cfg: cfg, s: s, src: src}

	if cfg.Health != nil {
		if g, ok := s.(GuardSetter); ok {
			g.SetGuards(true)
			defer g.SetGuards(false)
		}
		se.mon = health.NewMonitor(*cfg.Health)
	}

	// Opening the checkpoint schedule sweeps debris from crashed sessions:
	// orphaned temp files and ring slots past the retention bound.
	if cfg.CheckpointEvery > 0 {
		if _, err := SweepStale(cfg.CheckpointPath, cfg.CheckpointRetain); err != nil {
			return Report{}, err
		}
	}

	// Resume fast-forward: place the source where the interrupted session's
	// pass left off, deterministically from the step counter alone.
	skip := 0
	if cfg.Resume && s.Step() > 0 {
		sized, ok := src.(dataset.Sized)
		if !ok {
			return Report{}, fmt.Errorf("train: Resume requires a Sized source (known batches per epoch)")
		}
		bpe := sized.BatchesPerEpoch()
		if bpe <= 0 {
			return Report{}, fmt.Errorf("train: Resume with empty source")
		}
		skip = int(s.Step() % int64(bpe))
	}

	var bestLoss float64
	var sinceBest int
	haveBest := false

	for pass := 0; cfg.Epochs == 0 || pass < cfg.Epochs; pass++ {
		if err := ctx.Err(); err != nil {
			se.rep.Reason = StopCanceled
			return se.finish()
		}
		if cfg.MaxSteps > 0 && s.Step() >= cfg.MaxSteps {
			se.rep.Reason = StopMaxSteps
			return se.finish()
		}

		passStart := s.Step()
		seedStep := passStart
		if pass == 0 && skip > 0 {
			// The interrupted pass began skip batches before the checkpoint.
			seedStep = passStart - int64(skip)
		}
		seed := uint64(seedStep) + 1
		if cfg.SeedFunc != nil {
			seed = cfg.SeedFunc(pass, seedStep)
		}
		if err := src.Reset(seed); err != nil {
			return se.rep, err
		}
		if pass == 0 && skip > 0 {
			for i := 0; i < skip; i++ {
				if _, err := src.Next(); err != nil {
					return se.rep, fmt.Errorf("train: resume fast-forward: %w", err)
				}
			}
		}

		var ep EpochInfo
		ep.Epoch = pass
		batchIdx := 0
		if pass == 0 {
			batchIdx = skip
		}
		stopped := StopReason(-1)
		for {
			if err := ctx.Err(); err != nil {
				stopped = StopCanceled
				break
			}
			if err := faultinject.Hit(faultinject.PointSourceRead); err != nil {
				se.mergeEpoch(ep)
				return se.rep, fmt.Errorf("train: reading batch: %w", err)
			}
			b, err := src.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				se.mergeEpoch(ep)
				return se.rep, err
			}
			if err := se.step(b, pass, batchIdx, &ep); err != nil {
				se.mergeEpoch(ep)
				return se.rep, err
			}
			batchIdx++
			if cfg.MaxSteps > 0 && s.Step() >= cfg.MaxSteps {
				stopped = StopMaxSteps
				break
			}
		}

		if stopped == StopCanceled || stopped == StopMaxSteps {
			se.mergeEpoch(ep)
			se.rep.Reason = stopped
			return se.finish()
		}

		// Pass completed.
		se.mergeEpoch(ep)
		se.rep.Epochs++
		if cfg.Hooks.OnEpoch != nil {
			cfg.Hooks.OnEpoch(ep)
		}
		if cfg.EarlyStopPatience > 0 && ep.Stats.Samples > 0 {
			meanLoss := ep.Stats.Loss / float64(ep.Stats.Samples)
			if !haveBest || meanLoss < bestLoss-cfg.EarlyStopMinDelta {
				bestLoss, haveBest, sinceBest = meanLoss, true, 0
			} else {
				sinceBest++
				if sinceBest >= cfg.EarlyStopPatience {
					se.rep.Reason = StopEarly
					return se.finish()
				}
			}
		}
	}
	se.rep.Reason = StopCompleted
	return se.finish()
}

// step runs one batch: schedule LR, train, fire hooks, checkpoint, snapshot.
func (se *session) step(b sparse.Batch, pass, batchIdx int, ep *EpochInfo) error {
	cfg := &se.cfg
	step := se.s.Step() + 1
	var lr float64
	if cfg.LR != nil {
		lr = cfg.LR(step)
		se.s.(LRSetter).SetLR(lr)
	}
	start := time.Now()
	st := se.s.TrainBatch(b)
	dt := time.Since(start)

	ep.Batches++
	ep.TrainTime += dt
	ep.Stats.Samples += st.Samples
	ep.Stats.Loss += st.Loss
	ep.Stats.ActiveSum += st.ActiveSum
	ep.Stats.Rebuilt = ep.Stats.Rebuilt || st.Rebuilt
	ep.Stats.NonFinite += st.NonFinite

	if cfg.Hooks.OnBatch != nil {
		cfg.Hooks.OnBatch(BatchInfo{
			Step: step, Epoch: pass, Batch: batchIdx,
			Stats: st, LR: lr, TrainTime: dt,
		})
	}
	// Health verdict comes before the step's checkpoint and snapshot work: a
	// red batch must never persist or publish the weights it poisoned.
	if se.mon != nil {
		var meanLoss float64
		if st.Samples > 0 {
			meanLoss = st.Loss / float64(st.Samples)
		}
		if ev, red := se.mon.Observe(step, meanLoss, st.NonFinite); red {
			if cfg.Hooks.OnHealth != nil {
				cfg.Hooks.OnHealth(ev)
			}
			return &HealthError{Event: ev}
		}
	}
	if cfg.CheckpointEvery > 0 && step%cfg.CheckpointEvery == 0 {
		if err := se.checkpoint(step); err != nil {
			return err
		}
	}
	if cfg.SnapshotEvery > 0 && step%cfg.SnapshotEvery == 0 {
		cfg.Hooks.OnSnapshot(step)
	}
	return nil
}

// checkpoint writes one atomic checkpoint (rotating the retention ring) and
// fires the hook.
func (se *session) checkpoint(step int64) error {
	if err := atomicCheckpoint(se.s.(Saver), se.cfg.CheckpointPath, se.cfg.CheckpointRetain); err != nil {
		return err
	}
	se.last = step
	se.rep.LastCheckpoint = step
	if se.cfg.Hooks.OnCheckpoint != nil {
		se.cfg.Hooks.OnCheckpoint(CheckpointInfo{Step: step, Path: se.cfg.CheckpointPath})
	}
	return nil
}

// mergeEpoch folds a (possibly partial) pass into the session report.
func (se *session) mergeEpoch(ep EpochInfo) {
	se.rep.Steps += int64(ep.Batches)
	se.rep.TrainTime += ep.TrainTime
	se.rep.Stats.Samples += ep.Stats.Samples
	se.rep.Stats.Loss += ep.Stats.Loss
	se.rep.Stats.ActiveSum += ep.Stats.ActiveSum
	se.rep.Stats.Rebuilt = se.rep.Stats.Rebuilt || ep.Stats.Rebuilt
	se.rep.Stats.NonFinite += ep.Stats.NonFinite
}

// finish writes the final checkpoint (if the schedule is on and steps ran
// since the last one) and returns the report. A cancelled session therefore
// always leaves a loadable checkpoint at the configured path.
func (se *session) finish() (Report, error) {
	if se.cfg.CheckpointEvery > 0 && se.rep.Steps > 0 && se.s.Step() != se.last {
		if err := se.checkpoint(se.s.Step()); err != nil {
			return se.rep, err
		}
	}
	return se.rep, nil
}
