// Checkpoint retention ring and crash-debris sweeping.
//
// A session with CheckpointRetain N keeps the newest checkpoint at
// CheckpointPath and up to N-1 older generations at path.1 … path.(N-1)
// (newest fallback first). Every new checkpoint shifts the ring down one
// slot by rename before the fresh temp file is renamed into the primary
// slot, so the ring always holds the N most recent checkpoints that were
// each, at the time of writing, fully synced — a reader that finds the
// primary corrupt (torn by a crash faster than fsync, or damaged at rest)
// falls back through the numbered slots to the newest one that still
// verifies.
package train

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// RingPaths returns the on-disk paths of a checkpoint ring, newest first:
// the primary path, then path.1 … path.(retain-1). retain < 1 is treated
// as 1 (primary only, no fallbacks) — the pre-ring behavior.
func RingPaths(path string, retain int) []string {
	if retain < 1 {
		retain = 1
	}
	ps := make([]string, retain)
	ps[0] = path
	for i := 1; i < retain; i++ {
		ps[i] = path + "." + strconv.Itoa(i)
	}
	return ps
}

// rotateRing shifts the ring down one slot to make room for a new primary:
// path.(retain-2) → path.(retain-1), …, path → path.1. The oldest slot is
// overwritten; slots that don't exist yet are skipped. With retain <= 1
// there is nothing to rotate.
func rotateRing(path string, retain int) error {
	ps := RingPaths(path, retain)
	for i := len(ps) - 2; i >= 0; i-- {
		if _, err := os.Stat(ps[i]); err != nil {
			continue
		}
		if err := os.Rename(ps[i], ps[i+1]); err != nil {
			return fmt.Errorf("train: rotating checkpoint ring: %w", err)
		}
	}
	return nil
}

// SweepStale removes checkpoint debris around path: orphaned temp files
// (base.tmp-*) left by a crash between CreateTemp and the atomic rename,
// and ring slots past the retention bound (path.K for K >= retain, left
// over from a session configured with a larger ring). It returns the paths
// it removed. Sessions call it once when the checkpoint schedule opens the
// directory; it is safe to call on a directory with no checkpoints at all.
func SweepStale(path string, retain int) ([]string, error) {
	if retain < 1 {
		retain = 1
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("train: sweeping checkpoint dir: %w", err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		stale := false
		switch {
		case len(name) > len(base)+5 && name[:len(base)+5] == base+".tmp-":
			stale = true
		case len(name) > len(base)+1 && name[:len(base)+1] == base+".":
			k, err := strconv.Atoi(name[len(base)+1:])
			stale = err == nil && k >= retain
		}
		if !stale {
			continue
		}
		p := filepath.Join(dir, name)
		if err := os.Remove(p); err != nil {
			return removed, fmt.Errorf("train: sweeping %s: %w", p, err)
		}
		removed = append(removed, p)
	}
	return removed, nil
}
