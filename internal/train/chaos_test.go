package train

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
)

// armPlan activates a fault-injection plan for the test and disarms it on
// cleanup (the armed plan is process-global).
func armPlan(t *testing.T, spec string, seed uint64) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(p)
	t.Cleanup(faultinject.Disarm)
	return p
}

func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func TestRingPaths(t *testing.T) {
	got := RingPaths("/d/ck", 3)
	want := []string{"/d/ck", "/d/ck.1", "/d/ck.2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RingPaths = %v, want %v", got, want)
		}
	}
	if ps := RingPaths("/d/ck", 0); len(ps) != 1 || ps[0] != "/d/ck" {
		t.Fatalf("RingPaths(0) = %v", ps)
	}
}

func TestSweepStaleRemovesDebris(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	keep := []string{ckpt, ckpt + ".1", filepath.Join(dir, "other.slide"), ckpt + ".bak"}
	stale := []string{ckpt + ".tmp-12345", ckpt + ".tmp-zz", ckpt + ".2", ckpt + ".7"}
	for _, p := range append(append([]string{}, keep...), stale...) {
		touch(t, p)
	}
	removed, err := SweepStale(ckpt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != len(stale) {
		t.Fatalf("removed %v, want the %d stale files", removed, len(stale))
	}
	for _, p := range keep {
		if !exists(p) {
			t.Fatalf("sweep removed live file %s", p)
		}
	}
	for _, p := range stale {
		if exists(p) {
			t.Fatalf("sweep left %s", p)
		}
	}
}

// TestRunSweepsTempsAtOpen: a session with a checkpoint schedule clears
// orphaned temp files when it opens the checkpoint directory.
func TestRunSweepsTempsAtOpen(t *testing.T) {
	d := testData(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	orphan := ckpt + ".tmp-orphan1"
	touch(t, orphan)
	_, err := Run(context.Background(), testNet(t, d), memSource(t, d, 64), Config{
		MaxSteps: 2, CheckpointPath: ckpt, CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exists(orphan) {
		t.Fatal("session did not sweep the orphaned temp file")
	}
	if !exists(ckpt) {
		t.Fatal("checkpoint missing")
	}
}

// TestCheckpointRingRotation: with CheckpointRetain 3 the last three
// checkpoints survive, newest first.
func TestCheckpointRingRotation(t *testing.T) {
	d := testData(t)
	ckpt := filepath.Join(t.TempDir(), "ck.slide")
	net := testNet(t, d)
	rep, err := Run(context.Background(), net, memSource(t, d, 64), Config{
		MaxSteps: 8, CheckpointPath: ckpt, CheckpointEvery: 2, CheckpointRetain: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastCheckpoint != 8 {
		t.Fatalf("last checkpoint at %d, want 8", rep.LastCheckpoint)
	}
	wantSteps := []int64{8, 6, 4}
	for i, p := range RingPaths(ckpt, 3) {
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("ring slot %d: %v", i, err)
		}
		n, err := network.Load(f, 0)
		f.Close()
		if err != nil {
			t.Fatalf("ring slot %d unloadable: %v", i, err)
		}
		if n.Step() != wantSteps[i] {
			t.Fatalf("ring slot %d at step %d, want %d", i, n.Step(), wantSteps[i])
		}
	}
	if exists(ckpt + ".3") {
		t.Fatal("ring grew past the retention bound")
	}
}

// TestChaosKillMidCheckpointResume is the torn-write path the atomic rename
// claims to cover: a simulated crash partway through the second checkpoint's
// temp-file write must leave the primary checkpoint (the first one) intact,
// leave the torn temp on disk like a real kill would, and a resumed session
// from that checkpoint must be bit-identical to an uninterrupted run.
func TestChaosKillMidCheckpointResume(t *testing.T) {
	d := testData(t)
	const batch = 64
	src := memSource(t, d, batch)
	bpe := src.BatchesPerEpoch()
	if bpe < 3 {
		t.Fatalf("workload too small: %d batches/epoch", bpe)
	}
	total := int64(bpe + bpe/2)

	// Uninterrupted reference run.
	full := testNet(t, d)
	if _, err := Run(context.Background(), full, src, Config{MaxSteps: total}); err != nil {
		t.Fatal(err)
	}

	// Chaos run: the second checkpoint write is torn after 64 bytes.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	plan := armPlan(t, "checkpoint.write@2=cut:64", 0)
	crashed := testNet(t, d)
	_, err := Run(context.Background(), crashed, src, Config{
		MaxSteps: total, CheckpointPath: ckpt, CheckpointEvery: 3, CheckpointRetain: 2,
	})
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("chaos run err = %v, want an injected fault", err)
	}
	if fired := plan.Fired(); len(fired) != 1 {
		t.Fatalf("plan fired %v, want exactly the scripted cut", fired)
	}

	// The crash left debris: a torn temp file, and the first checkpoint
	// intact in the primary slot.
	torn, err := filepath.Glob(ckpt + ".tmp-*")
	if err != nil || len(torn) != 1 {
		t.Fatalf("torn temps %v (err %v), want exactly one", torn, err)
	}
	fi, err := os.Stat(torn[0])
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 64 {
		t.Fatalf("torn temp size %d, want the 64 scripted bytes", fi.Size())
	}

	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := network.Load(f, 0)
	f.Close()
	if err != nil {
		t.Fatalf("primary checkpoint unloadable after torn write: %v", err)
	}
	if resumed.Step() != 3 {
		t.Fatalf("surviving checkpoint at step %d, want 3", resumed.Step())
	}

	// Resume (which also sweeps the torn temp) and finish the run.
	if _, err := Run(context.Background(), resumed, src, Config{
		MaxSteps: total, Resume: true,
		CheckpointPath: ckpt, CheckpointEvery: 3, CheckpointRetain: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(ckpt + ".tmp-*"); len(left) != 0 {
		t.Fatalf("resume session left temps %v", left)
	}
	if !bytes.Equal(netBytes(t, full), netBytes(t, resumed)) {
		t.Fatal("resumed weights differ from the uninterrupted run")
	}
}

// TestChaosRenameCrashOrphansTemp: a simulated crash between the temp write
// and the rename leaves the fully written temp orphaned and the primary
// untouched; the next session sweeps it.
func TestChaosRenameCrashOrphansTemp(t *testing.T) {
	d := testData(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	armPlan(t, "checkpoint.rename@1=err", 0)
	_, err := Run(context.Background(), testNet(t, d), memSource(t, d, 64), Config{
		MaxSteps: 2, CheckpointPath: ckpt, CheckpointEvery: 2,
	})
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
	if exists(ckpt) {
		t.Fatal("primary checkpoint appeared despite the rename never running")
	}
	orphans, _ := filepath.Glob(ckpt + ".tmp-*")
	if len(orphans) != 1 {
		t.Fatalf("orphans %v, want exactly one", orphans)
	}
	if _, err := Run(context.Background(), testNet(t, d), memSource(t, d, 64), Config{
		MaxSteps: 2, CheckpointPath: ckpt, CheckpointEvery: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if left, _ := filepath.Glob(ckpt + ".tmp-*"); len(left) != 0 {
		t.Fatalf("orphan survived the next session's sweep: %v", left)
	}
}

// TestChaosSourceReadFault: an injected data-source error aborts the session
// with a typed, injected-wrapping error.
func TestChaosSourceReadFault(t *testing.T) {
	d := testData(t)
	armPlan(t, "datasource.read@2=err", 0)
	rep, err := Run(context.Background(), testNet(t, d), memSource(t, d, 64), Config{MaxSteps: 8})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
	if rep.Steps != 1 {
		t.Fatalf("session ran %d steps before the injected read fault, want 1", rep.Steps)
	}
}
