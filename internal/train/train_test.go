package train

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// testNet builds a small deterministic single-worker network.
func testNet(t *testing.T, d *dataset.Dataset) *network.Network {
	t.Helper()
	cfg := network.Config{
		InputDim: d.Features, HiddenDim: 16, OutputDim: d.Labels,
		Hash: network.DWTA, K: 3, L: 6,
		Workers: 1, Locked: true, Seed: 5, LR: 1e-3,
	}
	net, err := network.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	train, _, err := dataset.Generate(dataset.Amazon670K(0.0003, 3))
	if err != nil {
		t.Fatal(err)
	}
	return train
}

func memSource(t *testing.T, d *dataset.Dataset, batch int) *dataset.MemorySource {
	t.Helper()
	src, err := dataset.NewMemorySource(d, batch, sparse.Coalesced)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// netBytes serializes the network for bit-identical comparison.
func netBytes(t *testing.T, n *network.Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunMatchesLegacyEpochLoop: a session over a MemorySource must be
// bit-identical to hand-driving the iterator with the legacy seeding rule.
func TestRunMatchesLegacyEpochLoop(t *testing.T) {
	d := testData(t)
	const batch, epochs = 64, 2

	legacy := testNet(t, d)
	for e := 0; e < epochs; e++ {
		it := d.Iter(batch, sparse.Coalesced, uint64(legacy.Step())+1)
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			legacy.TrainBatch(b)
		}
	}

	viaRun := testNet(t, d)
	rep, err := Run(context.Background(), viaRun, memSource(t, d, batch), Config{Epochs: epochs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopCompleted || rep.Epochs != epochs {
		t.Fatalf("report %+v, want %d completed epochs", rep, epochs)
	}
	if rep.Steps != viaRun.Step() {
		t.Fatalf("report steps %d, net steps %d", rep.Steps, viaRun.Step())
	}
	if !bytes.Equal(netBytes(t, legacy), netBytes(t, viaRun)) {
		t.Fatal("session weights differ from the legacy epoch loop")
	}
}

// TestRunResumeBitIdentical: train to a mid-epoch checkpoint, load it, and
// continue with Resume — the final weights must equal an uninterrupted run.
func TestRunResumeBitIdentical(t *testing.T) {
	d := testData(t)
	const batch = 64
	src := memSource(t, d, batch)
	bpe := src.BatchesPerEpoch()
	if bpe < 3 {
		t.Fatalf("workload too small: %d batches/epoch", bpe)
	}
	// N lands mid-epoch (second pass, partway through); N+M spans a third.
	n := int64(bpe + bpe/2)
	m := int64(bpe)

	// Uninterrupted N+M steps.
	full := testNet(t, d)
	if _, err := Run(context.Background(), full, src, Config{MaxSteps: n + m}); err != nil {
		t.Fatal(err)
	}

	// Interrupted: N steps with a checkpoint exactly at N.
	ckpt := filepath.Join(t.TempDir(), "ckpt.slide")
	first := testNet(t, d)
	rep, err := Run(context.Background(), first, src, Config{
		MaxSteps: n, CheckpointPath: ckpt, CheckpointEvery: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopMaxSteps || rep.LastCheckpoint != n {
		t.Fatalf("report %+v, want max-steps stop with checkpoint at %d", rep, n)
	}

	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := network.Load(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != n {
		t.Fatalf("checkpoint at step %d, want %d", resumed.Step(), n)
	}
	if _, err := Run(context.Background(), resumed, src, Config{MaxSteps: n + m, Resume: true}); err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != n+m {
		t.Fatalf("resumed to step %d, want %d", resumed.Step(), n+m)
	}
	if !bytes.Equal(netBytes(t, full), netBytes(t, resumed)) {
		t.Fatal("resumed weights differ from the uninterrupted run")
	}
}

// TestRunCancellation: cancelling the context stops the session gracefully
// and leaves a loadable final checkpoint.
func TestRunCancellation(t *testing.T) {
	d := testData(t)
	ckpt := filepath.Join(t.TempDir(), "ckpt.slide")
	net := testNet(t, d)
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	rep, err := Run(ctx, net, memSource(t, d, 64), Config{
		Epochs:         0,                           // unbounded: only the cancel stops it
		CheckpointPath: ckpt, CheckpointEvery: 1000, // schedule never fires mid-run
		Hooks: Hooks{OnBatch: func(bi BatchInfo) {
			steps++
			if steps == 3 {
				cancel()
			}
		}},
	})
	if err != nil {
		t.Fatalf("cancellation must be graceful, got error %v", err)
	}
	if rep.Reason != StopCanceled || rep.Steps != 3 {
		t.Fatalf("report %+v, want canceled after 3 steps", rep)
	}
	// The final checkpoint must exist and load at the cancelled step.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatalf("no final checkpoint after cancel: %v", err)
	}
	back, err := network.Load(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if back.Step() != 3 {
		t.Fatalf("checkpoint at step %d, want 3", back.Step())
	}
}

// TestRunHooksAndSchedules: hook ordering, LR schedule delivery, snapshot
// and checkpoint schedules, and early stopping.
func TestRunHooksAndSchedules(t *testing.T) {
	d := testData(t)
	net := testNet(t, d)
	src := memSource(t, d, 64)
	bpe := src.BatchesPerEpoch()
	ckpt := filepath.Join(t.TempDir(), "ckpt.slide")

	var batches, epochs, ckpts int
	var snaps []int64
	var lrs []float64
	rep, err := Run(context.Background(), net, src, Config{
		Epochs:          2,
		LR:              func(step int64) float64 { return 1e-3 / float64(step) },
		CheckpointPath:  ckpt,
		CheckpointEvery: 2,
		SnapshotEvery:   3,
		Hooks: Hooks{
			OnBatch: func(bi BatchInfo) {
				batches++
				lrs = append(lrs, bi.LR)
				if bi.Step != int64(batches) {
					t.Errorf("batch %d reports step %d", batches, bi.Step)
				}
			},
			OnEpoch: func(ei EpochInfo) {
				epochs++
				if ei.Batches != bpe {
					t.Errorf("epoch %d ran %d batches, want %d", ei.Epoch, ei.Batches, bpe)
				}
			},
			OnCheckpoint: func(ci CheckpointInfo) { ckpts++ },
			OnSnapshot:   func(step int64) { snaps = append(snaps, step) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopCompleted {
		t.Fatalf("reason %v, want completed", rep.Reason)
	}
	if batches != 2*bpe || epochs != 2 {
		t.Fatalf("saw %d batches / %d epochs, want %d / 2", batches, epochs, 2*bpe)
	}
	for i, lr := range lrs {
		want := 1e-3 / float64(i+1)
		if lr != want {
			t.Fatalf("step %d: LR %g, want %g", i+1, lr, want)
		}
	}
	wantCkpts := bpe * 2 / 2
	if int64(batches)%2 != 0 {
		wantCkpts++ // the final flush
	}
	if ckpts != wantCkpts {
		t.Fatalf("%d checkpoints, want %d", ckpts, wantCkpts)
	}
	for i, s := range snaps {
		if s != int64(3*(i+1)) {
			t.Fatalf("snapshot %d at step %d, want %d", i, s, 3*(i+1))
		}
	}
}

// TestRunEarlyStop: a loss that never improves stops after patience passes.
func TestRunEarlyStop(t *testing.T) {
	d := testData(t)
	net := testNet(t, d)
	// Absurd MinDelta: no pass can improve by 1e9, so patience counts
	// straight up from the second pass on.
	rep, err := Run(context.Background(), net, memSource(t, d, 64), Config{
		Epochs:            100,
		EarlyStopPatience: 2,
		EarlyStopMinDelta: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopEarly {
		t.Fatalf("reason %v, want early-stop", rep.Reason)
	}
	if rep.Epochs != 3 { // pass 0 sets best; passes 1,2 exhaust patience
		t.Fatalf("ran %d epochs, want 3", rep.Epochs)
	}
}

// TestRunValidation: configuration errors are reported before any training.
func TestRunValidation(t *testing.T) {
	d := testData(t)
	net := testNet(t, d)
	src := memSource(t, d, 64)
	cases := []Config{
		{Epochs: -1},
		{MaxSteps: -2},
		{CheckpointEvery: 5},                 // path missing
		{CheckpointPath: "x"},                // every missing
		{SnapshotEvery: 3},                   // hook missing
		{EarlyStopPatience: -1},              // negative patience
		{Epochs: 1, EarlyStopMinDelta: -0.5}, // negative delta
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), net, src, cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if net.Step() != 0 {
		t.Fatal("validation failures must not train")
	}
}

// nonSaver wraps a Stepper hiding its Saver/LRSetter implementations.
type nonSaver struct{ s Stepper }

func (n nonSaver) TrainBatch(b sparse.Batch) network.BatchStats { return n.s.TrainBatch(b) }
func (n nonSaver) Step() int64                                  { return n.s.Step() }

// TestRunCapabilityChecks: schedules requiring Save/SetLR are rejected for
// steppers without them.
func TestRunCapabilityChecks(t *testing.T) {
	d := testData(t)
	net := nonSaver{testNet(t, d)}
	src := memSource(t, d, 64)
	if _, err := Run(context.Background(), net, src, Config{
		CheckpointPath: "x", CheckpointEvery: 1,
	}); err == nil {
		t.Error("checkpointing accepted for a non-Saver stepper")
	}
	if _, err := Run(context.Background(), net, src, Config{
		LR: func(int64) float64 { return 1 },
	}); err == nil {
		t.Error("LR schedule accepted for a non-LRSetter stepper")
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
