package dataset

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"

	"github.com/slide-cpu/slide/internal/sparse"
)

// Real-corpus word2vec pipeline: tokenize whitespace-separated text (the
// format of Mahoney's text8 dump), build a frequency-ranked vocabulary,
// and extract skip-gram samples — so the paper's actual Text8 experiment
// runs unchanged when the real file is available.

// CorpusConfig parameterizes BuildCorpus.
type CorpusConfig struct {
	Name string
	// MaxVocab keeps the most frequent words (0 = unlimited). The paper's
	// preprocessed Text8 uses 253,855 words.
	MaxVocab int
	// MinCount drops words rarer than this (word2vec convention; 0 = keep
	// all).
	MinCount int
	// Window is the skip-gram half-width (paper: 2).
	Window int
	// MaxTokens truncates the token stream (0 = read everything).
	MaxTokens int
}

// Vocabulary maps words to dense ids ordered by descending frequency
// (id 0 = most frequent), the layout word2vec tooling expects.
type Vocabulary struct {
	Words  []string
	Counts []int64
	index  map[string]int32
}

// Size returns the number of words.
func (v *Vocabulary) Size() int { return len(v.Words) }

// ID returns the id of a word and whether it is in the vocabulary.
func (v *Vocabulary) ID(word string) (int32, bool) {
	id, ok := v.index[word]
	return id, ok
}

// Word returns the word with the given id.
func (v *Vocabulary) Word(id int32) string { return v.Words[id] }

// BuildCorpus reads whitespace-separated text, builds the vocabulary, and
// extracts skip-gram samples (one-hot input token, multi-hot window
// labels). Out-of-vocabulary tokens are dropped from the stream before
// windowing, the standard text8 preprocessing.
func BuildCorpus(r io.Reader, cfg CorpusConfig) (*Dataset, *Vocabulary, error) {
	if cfg.Window <= 0 {
		return nil, nil, fmt.Errorf("dataset: corpus Window must be positive, got %d", cfg.Window)
	}
	if cfg.MaxVocab < 0 || cfg.MinCount < 0 || cfg.MaxTokens < 0 {
		return nil, nil, fmt.Errorf("dataset: corpus config has negative limits: %+v", cfg)
	}

	// Pass 1 over the stream (buffered in memory as ids-by-first-seen):
	// count words.
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sc.Split(bufio.ScanWords)
	counts := map[string]int64{}
	var stream []string
	for sc.Scan() {
		w := sc.Text()
		counts[w]++
		stream = append(stream, w)
		if cfg.MaxTokens > 0 && len(stream) >= cfg.MaxTokens {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading corpus: %w", err)
	}
	if len(stream) == 0 {
		return nil, nil, fmt.Errorf("dataset: empty corpus")
	}

	// Frequency-ranked vocabulary with MinCount/MaxVocab pruning. Ties
	// break lexicographically so the vocabulary is deterministic.
	type wc struct {
		w string
		c int64
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		if cfg.MinCount > 0 && c < int64(cfg.MinCount) {
			continue
		}
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if cfg.MaxVocab > 0 && len(all) > cfg.MaxVocab {
		all = all[:cfg.MaxVocab]
	}
	if len(all) == 0 {
		return nil, nil, fmt.Errorf("dataset: vocabulary empty after pruning (MinCount=%d)", cfg.MinCount)
	}
	vocab := &Vocabulary{
		Words:  make([]string, len(all)),
		Counts: make([]int64, len(all)),
		index:  make(map[string]int32, len(all)),
	}
	for i, e := range all {
		vocab.Words[i] = e.w
		vocab.Counts[i] = e.c
		vocab.index[e.w] = int32(i)
	}

	// Pass 2: map the stream to ids, dropping OOV tokens.
	ids := make([]int32, 0, len(stream))
	for _, w := range stream {
		if id, ok := vocab.index[w]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("dataset: no in-vocabulary tokens")
	}

	// Skip-gram extraction.
	var b sparse.Builder
	labels := make([]int32, 0, 2*cfg.Window)
	for i := range ids {
		labels = labels[:0]
		for d := -cfg.Window; d <= cfg.Window; d++ {
			j := i + d
			if d == 0 || j < 0 || j >= len(ids) {
				continue
			}
			if !slices.Contains(labels, ids[j]) {
				labels = append(labels, ids[j])
			}
		}
		if len(labels) == 0 {
			continue
		}
		slices.Sort(labels)
		b.Add([]int32{ids[i]}, []float32{1}, labels)
	}
	csr, err := b.CSR()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %w", err)
	}
	name := cfg.Name
	if name == "" {
		name = "corpus"
	}
	return New(name, vocab.Size(), vocab.Size(), csr), vocab, nil
}

// BuildCorpusString is BuildCorpus over an in-memory string (tests,
// examples).
func BuildCorpusString(text string, cfg CorpusConfig) (*Dataset, *Vocabulary, error) {
	return BuildCorpus(strings.NewReader(text), cfg)
}
