package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

func TestZipfBasics(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(5, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Errorf("N = %d", z.N())
	}
	// Probabilities sum to 1 and decrease with rank.
	sum := 0.0
	for i := 0; i < 100; i++ {
		p := z.Prob(i)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %g", i, p)
		}
		if i > 0 && p > z.Prob(i-1)+1e-12 {
			t.Fatalf("Prob not decreasing at %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	// Inverse CDF edges.
	if z.Sample(0) != 0 {
		t.Errorf("Sample(0) = %d, want 0", z.Sample(0))
	}
	if got := z.Sample(0.999999999); got != 99 {
		t.Errorf("Sample(~1) = %d, want 99", got)
	}
	// Uniform case.
	u, _ := NewZipf(4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(u.Prob(i)-0.25) > 1e-12 {
			t.Errorf("uniform Prob(%d) = %g", i, u.Prob(i))
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, _ := NewZipf(1000, 1.0)
	// Head mass: with s=1 over 1000 ranks, rank 0 holds ~1/H(1000) ≈ 13%.
	if z.Prob(0) < 0.1 || z.Prob(0) > 0.2 {
		t.Errorf("head probability %g outside Zipf expectation", z.Prob(0))
	}
}

func TestSyntheticGenerate(t *testing.T) {
	cfg := SyntheticConfig{
		Name: "toy", Features: 500, Labels: 50,
		TrainSize: 200, TestSize: 50,
		PrototypeNNZ: 8, MaxLabels: 3, ZipfS: 1.0, NoiseFeatures: 4, Seed: 1,
	}
	train, test, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 200 || test.Len() != 50 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
	st := train.Stats()
	if st.AvgLabels < 1 || st.AvgLabels > 3 {
		t.Errorf("AvgLabels = %g", st.AvgLabels)
	}
	if st.AvgFeatureNNZ < float64(cfg.PrototypeNNZ)/2 {
		t.Errorf("AvgFeatureNNZ = %g, suspiciously low", st.AvgFeatureNNZ)
	}
	if st.FeatureSparsity <= 0 || st.FeatureSparsity > 0.2 {
		t.Errorf("FeatureSparsity = %g", st.FeatureSparsity)
	}
	// Deterministic: same config regenerates identical data.
	train2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, b := train.Sample(i), train2.Sample(i)
		if len(a.Indices) != len(b.Indices) {
			t.Fatal("generation is not deterministic")
		}
		for k := range a.Indices {
			if a.Indices[k] != b.Indices[k] || a.Values[k] != b.Values[k] {
				t.Fatal("generation is not deterministic")
			}
		}
	}
}

func TestSyntheticSharedPrototypes(t *testing.T) {
	// Two samples with the same single label must share prototype features —
	// the learnable signal.
	cfg := SyntheticConfig{
		Name: "toy", Features: 1000, Labels: 5,
		TrainSize: 300, TestSize: 0,
		PrototypeNNZ: 10, MaxLabels: 1, ZipfS: 0, NoiseFeatures: 0, Seed: 2,
	}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[int32][]int{}
	for i := 0; i < train.Len(); i++ {
		y := train.LabelsOf(i)[0]
		byLabel[y] = append(byLabel[y], i)
	}
	for y, ids := range byLabel {
		if len(ids) < 2 {
			continue
		}
		a := train.Sample(ids[0])
		b := train.Sample(ids[1])
		shared := 0
		set := map[int32]bool{}
		for _, f := range a.Indices {
			set[f] = true
		}
		for _, f := range b.Indices {
			if set[f] {
				shared++
			}
		}
		if shared < cfg.PrototypeNNZ/2 {
			t.Errorf("label %d: samples share only %d features", y, shared)
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Features: 0, Labels: 5, TrainSize: 1, PrototypeNNZ: 1, MaxLabels: 1},
		{Features: 5, Labels: 0, TrainSize: 1, PrototypeNNZ: 1, MaxLabels: 1},
		{Features: 5, Labels: 5, TrainSize: 0, PrototypeNNZ: 1, MaxLabels: 1},
		{Features: 5, Labels: 5, TrainSize: 1, PrototypeNNZ: 9, MaxLabels: 1},
		{Features: 5, Labels: 5, TrainSize: 1, PrototypeNNZ: 1, MaxLabels: 0},
		{Features: 5, Labels: 5, TrainSize: 1, PrototypeNNZ: 1, MaxLabels: 1, ZipfS: -2},
	}
	for i, c := range bad {
		if _, _, err := Generate(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPresets(t *testing.T) {
	a := Amazon670K(0.01, 7)
	if a.Features != 1359 || a.Labels != 6700 {
		t.Errorf("amazon scaled dims: %d features, %d labels", a.Features, a.Labels)
	}
	w := WikiLSH325K(0.001, 7)
	if w.Features != 1617 {
		t.Errorf("wiki features %d", w.Features)
	}
	// Floors engage at tiny scales.
	tiny := Amazon670K(1e-9, 7)
	if tiny.Features < 256 || tiny.Labels < 64 || tiny.TrainSize < 512 {
		t.Errorf("floors not applied: %+v", tiny)
	}
	tx := Text8(0.001, 7)
	if tx.Vocab != 253 || tx.Window != 2 {
		t.Errorf("text8 preset: %+v", tx)
	}
}

func TestText8Generate(t *testing.T) {
	cfg := Text8Config{
		Name: "t8", Vocab: 200, TrainTokens: 2000, TestTokens: 300,
		Window: 2, ZipfS: 1.0, BigramQ: 0.5, Seed: 3,
	}
	train, test, err := GenerateText8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if test == nil || test.Len() == 0 {
		t.Fatal("no test split")
	}
	// Every sample is a one-hot input with 1..2*window labels.
	for i := 0; i < train.Len(); i++ {
		v := train.Sample(i)
		if v.NNZ() != 1 || v.Values[0] != 1 {
			t.Fatalf("sample %d is not one-hot: %v", i, v)
		}
		nl := len(train.LabelsOf(i))
		if nl < 1 || nl > 4 {
			t.Fatalf("sample %d has %d labels", i, nl)
		}
	}
	// The bigram structure must make contexts predictable: the planted
	// successor of a token should appear among its labels far more often
	// than chance.
	hits, total := 0, 0
	for i := 0; i < train.Len(); i++ {
		tok := train.Sample(i).Indices[0]
		succ := successor(cfg.Seed, tok, cfg.Vocab)
		for _, y := range train.LabelsOf(i) {
			if y == succ {
				hits++
				break
			}
		}
		total++
	}
	frac := float64(hits) / float64(total)
	if frac < 0.2 { // chance would be ~4/200 = 2%
		t.Errorf("successor appears in context only %.1f%% of the time", frac*100)
	}
}

func TestText8Validation(t *testing.T) {
	bad := []Text8Config{
		{Vocab: 1, TrainTokens: 100, Window: 2},
		{Vocab: 10, TrainTokens: 2, Window: 2},
		{Vocab: 10, TrainTokens: 100, Window: 0},
		{Vocab: 10, TrainTokens: 100, Window: 2, BigramQ: 1.5},
		{Vocab: 10, TrainTokens: 100, Window: 2, ZipfS: -1},
	}
	for i, c := range bad {
		if _, _, err := GenerateText8(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBatchIter(t *testing.T) {
	cfg := SyntheticConfig{
		Name: "toy", Features: 100, Labels: 10,
		TrainSize: 25, PrototypeNNZ: 4, MaxLabels: 2, Seed: 4,
	}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []sparse.Layout{sparse.Coalesced, sparse.Fragmented} {
		it := train.Iter(8, layout, 9)
		if it.Batches() != 4 {
			t.Errorf("Batches = %d, want 4", it.Batches())
		}
		total := 0
		sizes := []int{}
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			total += b.Len()
			sizes = append(sizes, b.Len())
		}
		if total != 25 {
			t.Errorf("%v: iterated %d samples, want 25", layout, total)
		}
		if sizes[len(sizes)-1] != 1 {
			t.Errorf("%v: last batch size %d, want 1", layout, sizes[len(sizes)-1])
		}
	}
	// Different seeds give different permutations (almost surely).
	b1, _ := train.Iter(25, sparse.Coalesced, 1).Next()
	b2, _ := train.Iter(25, sparse.Coalesced, 2).Next()
	same := true
	for i := 0; i < 25 && same; i++ {
		a, b := b1.Sample(i), b2.Sample(i)
		if len(a.Indices) != len(b.Indices) {
			same = false
			break
		}
		for k := range a.Indices {
			if a.Indices[k] != b.Indices[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different shuffle seeds produced the same epoch order")
	}
}

func TestHeadAndModelParams(t *testing.T) {
	cfg := SyntheticConfig{
		Name: "toy", Features: 100, Labels: 10,
		TrainSize: 30, PrototypeNNZ: 4, MaxLabels: 2, Seed: 5,
	}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := train.Head(10)
	if h.Len() != 10 {
		t.Errorf("Head len %d", h.Len())
	}
	h2 := train.Head(1000)
	if h2.Len() != 30 {
		t.Errorf("Head clamp failed: %d", h2.Len())
	}
	want := int64(100*16 + 16*10 + 16 + 10)
	if got := train.ModelParams(16); got != want {
		t.Errorf("ModelParams = %d, want %d", got, want)
	}
}

func TestXMCRoundTrip(t *testing.T) {
	cfg := SyntheticConfig{
		Name: "toy", Features: 200, Labels: 20,
		TrainSize: 40, PrototypeNNZ: 5, MaxLabels: 3, Seed: 6,
	}
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXMC(&buf, train); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXMC("toy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != train.Len() || back.Features != train.Features || back.Labels != train.Labels {
		t.Fatalf("round trip changed shape")
	}
	for i := 0; i < train.Len(); i++ {
		a, b := train.Sample(i), back.Sample(i)
		if len(a.Indices) != len(b.Indices) {
			t.Fatalf("sample %d nnz changed", i)
		}
		for k := range a.Indices {
			if a.Indices[k] != b.Indices[k] {
				t.Fatalf("sample %d index changed", i)
			}
			if math.Abs(float64(a.Values[k]-b.Values[k])) > 1e-6 {
				t.Fatalf("sample %d value changed: %g vs %g", i, a.Values[k], b.Values[k])
			}
		}
		la, lb := train.LabelsOf(i), back.LabelsOf(i)
		if len(la) != len(lb) {
			t.Fatalf("sample %d labels changed", i)
		}
		for k := range la {
			if la[k] != lb[k] {
				t.Fatalf("sample %d label changed", i)
			}
		}
	}
}

func TestXMCParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"short header":    "3 4\n",
		"bad header num":  "a 4 5\n",
		"zero dims":       "0 4 5\n",
		"bad label":       "1 10 5\nxx 1:1\n",
		"label range":     "1 10 5\n7 1:1\n",
		"bad feature":     "1 10 5\n1 zz:1\n",
		"feature range":   "1 10 5\n1 10:1\n",
		"bad value":       "1 10 5\n1 1:zz\n",
		"missing colon":   "1 10 5\n1 34\n",
		"sample mismatch": "2 10 5\n1 1:1\n",
	}
	for name, in := range cases {
		if _, err := ReadXMC("x", strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestXMCNoLabelLine(t *testing.T) {
	in := "2 10 5\n 1:0.5 3:0.25\n2,4 0:1\n"
	d, err := ReadXMC("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.LabelsOf(0)) != 0 {
		t.Errorf("sample 0 labels = %v, want none", d.LabelsOf(0))
	}
	if got := d.LabelsOf(1); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("sample 1 labels = %v", got)
	}
	if v := d.Sample(0); v.NNZ() != 2 || v.Values[1] != 0.25 {
		t.Errorf("sample 0 = %v", v)
	}
}

func TestIterPanicsOnBadBatchSize(t *testing.T) {
	cfg := SyntheticConfig{Name: "toy", Features: 10, Labels: 5,
		TrainSize: 5, PrototypeNNZ: 2, MaxLabels: 1, Seed: 1}
	train, _, _ := Generate(cfg)
	defer func() {
		if recover() == nil {
			t.Error("batch size 0 did not panic")
		}
	}()
	train.Iter(0, sparse.Coalesced, 1)
}
