package dataset

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with P(i) ∝ 1/(i+1)^s — the power-law label
// popularity of extreme-classification datasets and the unigram distribution
// of natural-language corpora. (math/rand/v2 dropped the v1 Zipf generator,
// so the substrate carries its own inverse-CDF sampler.)
type Zipf struct {
	cum []float64 // cumulative probabilities, cum[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s >= 0
// (s=0 is uniform).
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: Zipf needs n > 0, got %d", n)
	}
	if s < 0 || math.IsNaN(s) {
		return nil, fmt.Errorf("dataset: Zipf exponent must be >= 0, got %g", s)
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample maps a uniform u in [0,1) to a rank by inverse CDF.
func (z *Zipf) Sample(u float64) int {
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// Prob returns P(rank i).
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
