package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"

	"github.com/slide-cpu/slide/internal/sparse"
)

// FileSource streams an XMC/SVMlight-format file as training batches without
// ever holding more than a bounded working set in memory — the out-of-core
// path for datasets larger than RAM. Each Reset reopens the file and makes
// one sequential pass; an optional shuffle window of W samples decorrelates
// the stream (each emitted sample is drawn uniformly from the next W
// not-yet-emitted samples, the classic streaming-shuffle buffer).
//
// Memory bound: the parser scratch plus at most (window + batchSize) parsed
// samples are resident at any moment, independent of file size.
type FileSource struct {
	path   string
	name   string
	size   int
	window int

	header xmcHeader

	f       *os.File
	sc      *bufio.Scanner
	lineNo  int
	kv      map[int32]float32
	rng     *rand.Rand
	emitted int // samples yielded this pass, checked against the header at EOF

	// buf is the shuffle window: parsed samples awaiting emission.
	buf []streamSample
	b   sparse.Builder
	eof bool
}

type streamSample struct {
	idx    []int32
	val    []float32
	labels []int32
}

// NewFileSource opens an XMC-format file for streaming. The header is read
// (and the file closed again) to learn the dimensions; window <= 1 means
// sequential order. Reset must be called before the first Next.
func NewFileSource(path string, batchSize, window int) (*FileSource, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("dataset: batch size %d must be positive", batchSize)
	}
	if window < 0 {
		return nil, fmt.Errorf("dataset: shuffle window %d must be >= 0", window)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	h, err := readXMCHeader(sc)
	if err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", path, err)
	}
	return &FileSource{
		path: path, name: path, size: batchSize, window: window,
		header: h, kv: map[int32]float32{},
	}, nil
}

// Name implements Source.
func (s *FileSource) Name() string { return s.name }

// Features implements Source.
func (s *FileSource) Features() int { return s.header.Features }

// Labels implements Source.
func (s *FileSource) Labels() int { return s.header.Labels }

// DeclaredSamples returns the sample count the file header declares.
func (s *FileSource) DeclaredSamples() int { return s.header.Samples }

// BatchesPerEpoch implements Sized, from the header's declared sample count.
func (s *FileSource) BatchesPerEpoch() int {
	return (s.header.Samples + s.size - 1) / s.size
}

// Reset implements Source: close any open pass, reopen the file, skip the
// header, and re-seed the shuffle window.
func (s *FileSource) Reset(seed uint64) error {
	s.Close()
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	h, err := readXMCHeader(sc)
	if err != nil {
		f.Close()
		return fmt.Errorf("dataset: %s: %w", s.path, err)
	}
	if h != s.header {
		f.Close()
		return fmt.Errorf("dataset: %s: header changed between passes (%v -> %v)", s.path, s.header, h)
	}
	s.f, s.sc, s.lineNo = f, sc, 1
	s.rng = rand.New(rand.NewPCG(seed, 0xF11E50 /* stream id */))
	s.buf = s.buf[:0]
	s.eof = false
	s.emitted = 0
	return nil
}

// Close releases the underlying file. A closed source can be Reset again.
func (s *FileSource) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f, s.sc = nil, nil
	return err
}

// fill parses lines until the shuffle window holds target samples or the
// file is exhausted.
func (s *FileSource) fill(target int) error {
	for len(s.buf) < target && !s.eof {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return fmt.Errorf("dataset: reading %s line %d: %w", s.path, s.lineNo, err)
			}
			s.eof = true
			break
		}
		s.lineNo++
		line := s.sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		idx, val, labels, err := xmcLine(line, s.lineNo, s.header, s.kv)
		if err != nil {
			return err
		}
		s.buf = append(s.buf, streamSample{idx: idx, val: val, labels: labels})
	}
	return nil
}

// take removes and returns one sample. Sequential mode (window <= 1) pops
// the only buffered sample; shuffle mode draws uniformly from the window and
// swap-removes, so every not-yet-emitted sample within the lookahead is
// equally likely next.
func (s *FileSource) take() streamSample {
	i := 0
	if s.window > 1 {
		i = s.rng.IntN(len(s.buf))
	}
	out := s.buf[i]
	last := len(s.buf) - 1
	s.buf[i] = s.buf[last]
	s.buf[last] = streamSample{}
	s.buf = s.buf[:last]
	return out
}

// Next implements Source: assemble up to batchSize samples into a coalesced
// CSR batch.
func (s *FileSource) Next() (sparse.Batch, error) {
	if s.f == nil {
		return nil, fmt.Errorf("dataset: file source used before Reset (or after Close)")
	}
	s.b.Reset()
	n := 0
	for n < s.size {
		// Keep the window full before every draw so each draw sees the whole
		// lookahead; sequential mode buffers exactly one sample at a time.
		if err := s.fill(max(s.window, 1)); err != nil {
			return nil, err
		}
		if len(s.buf) == 0 {
			break
		}
		sm := s.take()
		s.b.Add(sm.idx, sm.val, sm.labels)
		n++
	}
	s.emitted += n
	if s.eof && len(s.buf) == 0 && s.emitted != s.header.Samples {
		// BatchesPerEpoch (and therefore resume fast-forward) trusts the
		// header, so a short file — e.g. a truncated download — must be an
		// error, exactly as ReadXMC rejects it, not a silently shorter pass.
		s.Close()
		return nil, fmt.Errorf("dataset: %s: header declares %d samples, file has %d",
			s.path, s.header.Samples, s.emitted)
	}
	if n == 0 {
		s.Close()
		return nil, io.EOF
	}
	csr, err := s.b.CSR()
	if err != nil {
		return nil, err
	}
	return csr, nil
}
