package dataset

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

// drainSource collects every sample of one pass in emission order.
func drainSource(t *testing.T, s Source, seed uint64) (idx [][]int32, val [][]float32, labels [][]int32) {
	t.Helper()
	if err := s.Reset(seed); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	for {
		b, err := s.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		for i := 0; i < b.Len(); i++ {
			v := b.Sample(i)
			idx = append(idx, slices.Clone(v.Indices))
			val = append(val, slices.Clone(v.Values))
			labels = append(labels, slices.Clone(b.Labels(i)))
		}
	}
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	train, _, err := Generate(Amazon670K(0.0005, 7))
	if err != nil {
		t.Fatal(err)
	}
	return train
}

// TestMemorySourceMatchesIter: a MemorySource pass must be bit-identical to
// the legacy epoch iterator with the same seed — the property Trainer/
// TrainEpoch equivalence rests on.
func TestMemorySourceMatchesIter(t *testing.T) {
	d := testDataset(t)
	const batch, seed = 64, 99

	src, err := NewMemorySource(d, batch, sparse.Coalesced)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := src.BatchesPerEpoch(), (d.Len()+batch-1)/batch; got != want {
		t.Fatalf("BatchesPerEpoch = %d, want %d", got, want)
	}

	if err := src.Reset(seed); err != nil {
		t.Fatal(err)
	}
	it := d.Iter(batch, sparse.Coalesced, seed)
	batches := 0
	for {
		want, ok := it.Next()
		got, err := src.Next()
		if !ok {
			if err != io.EOF {
				t.Fatalf("source yields more batches than Iter (err=%v)", err)
			}
			break
		}
		if err != nil {
			t.Fatalf("source ended early at batch %d: %v", batches, err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("batch %d: len %d != %d", batches, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			gv, wv := got.Sample(i), want.Sample(i)
			if !slices.Equal(gv.Indices, wv.Indices) || !slices.Equal(gv.Values, wv.Values) ||
				!slices.Equal(got.Labels(i), want.Labels(i)) {
				t.Fatalf("batch %d sample %d differs", batches, i)
			}
		}
		batches++
	}
	if batches != src.BatchesPerEpoch() {
		t.Fatalf("saw %d batches, BatchesPerEpoch says %d", batches, src.BatchesPerEpoch())
	}
}

// TestFileSourceSequentialMatchesReadXMC: with no shuffle window, a file
// pass must yield exactly the samples ReadXMC materializes, in file order.
func TestFileSourceSequentialMatchesReadXMC(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := WriteXMC(&buf, d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := NewFileSource(path, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Features() != d.Features || src.Labels() != d.Labels {
		t.Fatalf("dims %d/%d, want %d/%d", src.Features(), src.Labels(), d.Features, d.Labels)
	}
	if src.DeclaredSamples() != d.Len() {
		t.Fatalf("declared %d samples, want %d", src.DeclaredSamples(), d.Len())
	}

	for pass := 0; pass < 2; pass++ { // two passes: Reset must rewind cleanly
		idx, val, labels := drainSource(t, src, uint64(pass))
		if len(idx) != d.Len() {
			t.Fatalf("pass %d: %d samples, want %d", pass, len(idx), d.Len())
		}
		for i := range idx {
			v := d.Sample(i)
			if !slices.Equal(idx[i], v.Indices) || !slices.Equal(val[i], v.Values) ||
				!slices.Equal(labels[i], d.LabelsOf(i)) {
				t.Fatalf("pass %d: sample %d differs from ReadXMC order", pass, i)
			}
		}
	}
}

// TestFileSourceRejectsTruncated: a file shorter than its header declares
// must error at end of pass, not yield a silently shorter epoch —
// BatchesPerEpoch (and resume fast-forward) trusts the header.
func TestFileSourceRejectsTruncated(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := WriteXMC(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	truncated := bytes.Join(lines[:len(lines)-3], []byte("\n")) // drop 3 samples
	path := filepath.Join(t.TempDir(), "short.txt")
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := NewFileSource(path, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Reset(1); err != nil {
		t.Fatal(err)
	}
	for {
		_, err := src.Next()
		if err == io.EOF {
			t.Fatal("truncated file streamed to EOF without error")
		}
		if err != nil {
			return // the declared-vs-actual mismatch error
		}
	}
}

// TestFileSourceShuffleWindow: with a window, each pass is a permutation of
// the file (nothing lost, nothing duplicated), deterministic per seed and
// different across seeds.
func TestFileSourceShuffleWindow(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := WriteXMC(&buf, d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	src, err := NewFileSource(path, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	key := func(idx []int32, labels []int32) string {
		b := make([]byte, 0, 4*(len(idx)+len(labels)))
		for _, x := range idx {
			b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		b = append(b, 0xFF)
		for _, y := range labels {
			b = append(b, byte(y), byte(y>>8), byte(y>>16), byte(y>>24))
		}
		return string(b)
	}
	wantKeys := map[string]int{}
	for i := 0; i < d.Len(); i++ {
		wantKeys[key(d.Sample(i).Indices, d.LabelsOf(i))]++
	}

	idx1, _, lab1 := drainSource(t, src, 1)
	if len(idx1) != d.Len() {
		t.Fatalf("shuffled pass has %d samples, want %d", len(idx1), d.Len())
	}
	gotKeys := map[string]int{}
	shuffled := false
	for i := range idx1 {
		gotKeys[key(idx1[i], lab1[i])]++
		if !slices.Equal(idx1[i], d.Sample(i).Indices) {
			shuffled = true
		}
	}
	for k, n := range wantKeys {
		if gotKeys[k] != n {
			t.Fatal("shuffled pass is not a permutation of the file")
		}
	}
	if !shuffled {
		t.Fatal("window shuffle left the file order unchanged")
	}

	// Same seed → same order; different seed → (overwhelmingly) different.
	idx1b, _, _ := drainSource(t, src, 1)
	idx2, _, _ := drainSource(t, src, 2)
	same1, same2 := true, true
	for i := range idx1 {
		if !slices.Equal(idx1[i], idx1b[i]) {
			same1 = false
		}
		if !slices.Equal(idx1[i], idx2[i]) {
			same2 = false
		}
	}
	if !same1 {
		t.Fatal("same seed produced different shuffle orders")
	}
	if same2 {
		t.Fatal("different seeds produced identical shuffle orders")
	}
}

// TestSyntheticSourceMatchesGenerate: a synthetic pass seeded with the train
// stream id reproduces Generate's train split bit-for-bit — the generator
// and the source share one sample routine.
func TestSyntheticSourceMatchesGenerate(t *testing.T) {
	cfg := Amazon670K(0.0005, 7)
	train, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSyntheticSource(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	idx, val, labels := drainSource(t, src, 0xEC0) // Generate's train stream id
	if len(idx) != train.Len() {
		t.Fatalf("pass has %d samples, want %d", len(idx), train.Len())
	}
	for i := range idx {
		v := train.Sample(i)
		if !slices.Equal(idx[i], v.Indices) || !slices.Equal(val[i], v.Values) ||
			!slices.Equal(labels[i], train.LabelsOf(i)) {
			t.Fatalf("sample %d differs from Generate", i)
		}
	}
}
