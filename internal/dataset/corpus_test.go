package dataset

import (
	"strings"
	"testing"
)

const tinyCorpus = "the cat sat on the mat the cat ran to the dog the dog ran to the mat"

func TestBuildCorpusVocabulary(t *testing.T) {
	ds, vocab, err := BuildCorpusString(tinyCorpus, CorpusConfig{Name: "tiny", Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	// "the" appears 6 times and must be id 0.
	if vocab.Word(0) != "the" {
		t.Errorf("most frequent word = %q, want \"the\"", vocab.Word(0))
	}
	if id, ok := vocab.ID("the"); !ok || id != 0 {
		t.Errorf("ID(the) = %d, %v", id, ok)
	}
	if _, ok := vocab.ID("zebra"); ok {
		t.Error("OOV word found in vocabulary")
	}
	if vocab.Size() != 8 { // the cat sat on mat ran to dog
		t.Errorf("vocab size = %d, want 8", vocab.Size())
	}
	// Counts are ranked descending.
	for i := 1; i < vocab.Size(); i++ {
		if vocab.Counts[i] > vocab.Counts[i-1] {
			t.Fatalf("counts not descending at %d", i)
		}
	}
	if ds.Features != vocab.Size() || ds.Labels != vocab.Size() {
		t.Errorf("dataset dims %d/%d", ds.Features, ds.Labels)
	}
	// 18 tokens, every one has at least one neighbour -> 18 samples.
	if ds.Len() != 18 {
		t.Errorf("samples = %d, want 18", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// First sample: token "the" with context {cat, sat}.
	s0 := ds.Sample(0)
	if s0.NNZ() != 1 || s0.Values[0] != 1 {
		t.Errorf("sample 0 not one-hot: %v", s0)
	}
	labels := ds.LabelsOf(0)
	catID, _ := vocab.ID("cat")
	satID, _ := vocab.ID("sat")
	want := map[int32]bool{catID: true, satID: true}
	if len(labels) != 2 || !want[labels[0]] || !want[labels[1]] {
		t.Errorf("sample 0 labels = %v, want {cat, sat} ids", labels)
	}
}

func TestBuildCorpusMinCount(t *testing.T) {
	ds, vocab, err := BuildCorpusString(tinyCorpus, CorpusConfig{Window: 1, MinCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Words with count >= 2: the(6) cat(2) ran(2) to(2) dog(2) mat(2); sat
	// and on are dropped.
	if vocab.Size() != 6 {
		t.Errorf("vocab size = %d, want 6", vocab.Size())
	}
	if _, ok := vocab.ID("sat"); ok {
		t.Error("rare word survived MinCount")
	}
	// OOV tokens are removed from the stream BEFORE windowing, so "the"
	// and "mat" in "the mat" become adjacent even with "sat on" dropped.
	if ds.Len() == 0 {
		t.Fatal("no samples")
	}
}

func TestBuildCorpusMaxVocabAndTokens(t *testing.T) {
	_, vocab, err := BuildCorpusString(tinyCorpus, CorpusConfig{Window: 1, MaxVocab: 3})
	if err != nil {
		t.Fatal(err)
	}
	if vocab.Size() != 3 {
		t.Errorf("vocab size = %d, want 3", vocab.Size())
	}
	ds, _, err := BuildCorpusString(tinyCorpus, CorpusConfig{Window: 1, MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() > 5 {
		t.Errorf("samples = %d from 5 tokens", ds.Len())
	}
}

func TestBuildCorpusErrors(t *testing.T) {
	if _, _, err := BuildCorpusString("a b c", CorpusConfig{Window: 0}); err == nil {
		t.Error("zero window accepted")
	}
	if _, _, err := BuildCorpusString("", CorpusConfig{Window: 2}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, _, err := BuildCorpusString("a a b", CorpusConfig{Window: 1, MinCount: 10}); err == nil {
		t.Error("fully pruned vocabulary accepted")
	}
	if _, _, err := BuildCorpusString("a b", CorpusConfig{Window: 1, MaxVocab: -1}); err == nil {
		t.Error("negative MaxVocab accepted")
	}
}

func TestBuildCorpusDeterministicTieBreak(t *testing.T) {
	// Equal-frequency words must rank lexicographically for reproducible
	// vocabularies.
	_, v1, err := BuildCorpusString("b a d c", CorpusConfig{Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(v1.Words, " ") != "a b c d" {
		t.Errorf("tie-break order: %v", v1.Words)
	}
}
