package dataset

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"github.com/slide-cpu/slide/internal/sparse"
)

// Text8Config parameterizes the Text8-like word2vec workload (§5.1): a
// synthetic token stream with a Zipfian unigram distribution and a planted
// bigram structure, turned into skip-gram samples — one-hot input token,
// multi-hot context labels over a window (the paper uses window 2 and
// hidden 200).
type Text8Config struct {
	Name string
	// Vocab is the vocabulary size (full Text8: 253,855).
	Vocab int
	// TrainTokens / TestTokens are the stream lengths turned into skip-gram
	// samples (full Text8: 13,604,165 / 3,401,042).
	TrainTokens int
	TestTokens  int
	// Window is the skip-gram context half-width (paper: 2).
	Window int
	// ZipfS is the unigram exponent (natural text ≈ 1).
	ZipfS float64
	// BigramQ is the probability that a token follows its predecessor's
	// planted successor instead of a fresh unigram draw — the learnable
	// co-occurrence structure.
	BigramQ float64
	Seed    uint64
}

// Validate reports configuration errors.
func (c *Text8Config) Validate() error {
	if c.Vocab <= 1 {
		return fmt.Errorf("dataset: text8 needs Vocab > 1, got %d", c.Vocab)
	}
	if c.TrainTokens <= 2*c.Window || c.TestTokens < 0 {
		return fmt.Errorf("dataset: text8 token counts invalid (%d/%d)", c.TrainTokens, c.TestTokens)
	}
	if c.Window <= 0 {
		return fmt.Errorf("dataset: text8 Window must be positive, got %d", c.Window)
	}
	if c.BigramQ < 0 || c.BigramQ > 1 {
		return fmt.Errorf("dataset: BigramQ must be in [0,1], got %g", c.BigramQ)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("dataset: ZipfS must be >= 0, got %g", c.ZipfS)
	}
	return nil
}

// successor returns the planted bigram successor of token w.
func successor(seed uint64, w int32, vocab int) int32 {
	h := seed ^ uint64(uint32(w))*0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return int32(h % uint64(vocab))
}

// GenerateText8 builds train and test skip-gram datasets.
func GenerateText8(c Text8Config) (train, test *Dataset, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	zipf, err := NewZipf(c.Vocab, c.ZipfS)
	if err != nil {
		return nil, nil, err
	}
	gen := func(tokens int, stream uint64) (*Dataset, error) {
		rng := rand.New(rand.NewPCG(c.Seed, stream))
		// Token stream.
		stream_ := make([]int32, tokens)
		stream_[0] = int32(zipf.Sample(rng.Float64()))
		for i := 1; i < tokens; i++ {
			if rng.Float64() < c.BigramQ {
				stream_[i] = successor(c.Seed, stream_[i-1], c.Vocab)
			} else {
				stream_[i] = int32(zipf.Sample(rng.Float64()))
			}
		}
		// Skip-gram extraction.
		var b sparse.Builder
		labels := make([]int32, 0, 2*c.Window)
		for i := range stream_ {
			labels = labels[:0]
			for d := -c.Window; d <= c.Window; d++ {
				j := i + d
				if d == 0 || j < 0 || j >= tokens {
					continue
				}
				if !slices.Contains(labels, stream_[j]) {
					labels = append(labels, stream_[j])
				}
			}
			if len(labels) == 0 {
				continue
			}
			slices.Sort(labels)
			b.Add([]int32{stream_[i]}, []float32{1}, labels)
		}
		csr, err := b.CSR()
		if err != nil {
			return nil, err
		}
		return New(c.Name, c.Vocab, c.Vocab, csr), nil
	}
	if train, err = gen(c.TrainTokens, 0x7E8); err != nil {
		return nil, nil, err
	}
	if c.TestTokens > 0 {
		if test, err = gen(c.TestTokens, 0x7E9); err != nil {
			return nil, nil, err
		}
	}
	return train, test, nil
}

// Text8 returns the Text8-like workload (Table 1 row 3: 253,855 vocabulary,
// 13,604,165 train / 3,401,042 test tokens, window 2) scaled by scale. The
// paper trains hidden=200, batch 512, SimHash K=9 L=50 on this dataset.
func Text8(scale float64, seed uint64) Text8Config {
	return Text8Config{
		Name:        fmt.Sprintf("text8@%.3g", scale),
		Vocab:       scaleDim(253855, scale, 128),
		TrainTokens: scaleDim(13604165, scale, 1024),
		TestTokens:  scaleDim(3401042, scale, 256),
		Window:      2,
		ZipfS:       1.0,
		BigramQ:     0.55,
		Seed:        seed,
	}
}
