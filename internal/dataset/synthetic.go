package dataset

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"github.com/slide-cpu/slide/internal/sparse"
)

// SyntheticConfig parameterizes the planted-model extreme-classification
// generator. Each label owns a sparse "prototype" (a deterministic pseudo-
// random feature subset); a sample draws labels from a Zipf popularity
// distribution and emits the union of its labels' prototypes plus noise.
// The planted structure makes the task learnable, so convergence experiments
// (Figure 6) are meaningful, while dimensions, sparsity and label counts are
// free parameters matched to Table 1.
type SyntheticConfig struct {
	Name      string
	Features  int
	Labels    int
	TrainSize int
	TestSize  int
	// PrototypeNNZ is the per-label prototype size; sample feature counts
	// are roughly PrototypeNNZ · labels-per-sample + NoiseFeatures.
	PrototypeNNZ int
	// MaxLabels bounds labels per sample (uniform 1..MaxLabels).
	MaxLabels int
	// ZipfS is the label-popularity exponent (0 = uniform).
	ZipfS float64
	// NoiseFeatures adds this many random non-prototype features per sample.
	NoiseFeatures int
	Seed          uint64
}

// Validate reports configuration errors.
func (c *SyntheticConfig) Validate() error {
	if c.Features <= 0 || c.Labels <= 0 {
		return fmt.Errorf("dataset: synthetic needs positive dims (features=%d labels=%d)",
			c.Features, c.Labels)
	}
	if c.TrainSize <= 0 || c.TestSize < 0 {
		return fmt.Errorf("dataset: synthetic needs TrainSize>0, TestSize>=0 (got %d/%d)",
			c.TrainSize, c.TestSize)
	}
	if c.PrototypeNNZ <= 0 || c.PrototypeNNZ > c.Features {
		return fmt.Errorf("dataset: PrototypeNNZ %d out of range (features %d)",
			c.PrototypeNNZ, c.Features)
	}
	if c.MaxLabels <= 0 {
		return fmt.Errorf("dataset: MaxLabels must be positive, got %d", c.MaxLabels)
	}
	if c.ZipfS < 0 {
		return fmt.Errorf("dataset: ZipfS must be >= 0, got %g", c.ZipfS)
	}
	return nil
}

// prototypeFeature returns slot j of label's prototype, derived on the fly
// so 670K prototypes need no storage.
func prototypeFeature(seed uint64, label int32, j, features int) int32 {
	h := seed ^ uint64(uint32(label))<<24 ^ uint64(j)
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return int32(h % uint64(features))
}

// synthSample draws one planted-model sample: labels from the Zipf
// popularity distribution, the union of their prototypes plus noise as
// features. idxSet is caller-owned scratch reused across samples; the
// returned slices are freshly allocated. Both Generate and the streaming
// SyntheticSource consume exactly this routine, so a source pass is
// bit-identical to the materialized dataset drawn from the same RNG state.
func synthSample(c *SyntheticConfig, zipf *Zipf, rng *rand.Rand, idxSet map[int32]float32) (idx []int32, val []float32, labels []int32) {
	nLab := 1 + rng.IntN(c.MaxLabels)
	labels = make([]int32, 0, nLab)
	for len(labels) < nLab {
		y := int32(zipf.Sample(rng.Float64()))
		if !slices.Contains(labels, y) {
			labels = append(labels, y)
		}
	}
	clear(idxSet)
	for _, y := range labels {
		for j := 0; j < c.PrototypeNNZ; j++ {
			f := prototypeFeature(c.Seed, y, j, c.Features)
			idxSet[f] = 1 + float32(rng.NormFloat64())*0.1
		}
	}
	for j := 0; j < c.NoiseFeatures; j++ {
		f := int32(rng.IntN(c.Features))
		if _, ok := idxSet[f]; !ok {
			idxSet[f] = float32(rng.NormFloat64()) * 0.3
		}
	}
	idx = make([]int32, 0, len(idxSet))
	for f := range idxSet {
		idx = append(idx, f)
	}
	slices.Sort(idx)
	val = make([]float32, len(idx))
	for k, f := range idx {
		val[k] = idxSet[f]
	}
	slices.Sort(labels)
	return idx, val, labels
}

// Generate builds the train and test splits.
func Generate(c SyntheticConfig) (train, test *Dataset, err error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	zipf, err := NewZipf(c.Labels, c.ZipfS)
	if err != nil {
		return nil, nil, err
	}
	gen := func(n int, stream uint64) (*Dataset, error) {
		rng := rand.New(rand.NewPCG(c.Seed, stream))
		var b sparse.Builder
		idxSet := make(map[int32]float32)
		for i := 0; i < n; i++ {
			idx, val, labels := synthSample(&c, zipf, rng, idxSet)
			b.Add(idx, val, labels)
		}
		csr, err := b.CSR()
		if err != nil {
			return nil, err
		}
		return New(c.Name, c.Features, c.Labels, csr), nil
	}
	if train, err = gen(c.TrainSize, 0xEC0); err != nil {
		return nil, nil, err
	}
	if c.TestSize > 0 {
		if test, err = gen(c.TestSize, 0xEC1); err != nil {
			return nil, nil, err
		}
	}
	return train, test, nil
}

// scaleDim scales a paper-sized dimension down, keeping a sane floor.
func scaleDim(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	return n
}

// Amazon670K returns the Amazon-670K-like workload (Table 1 row 1:
// 135,909 features at 0.055% density, 670,091 labels, 490,449 train /
// 153,025 test) scaled by scale. The paper trains hidden=128, batch 1024,
// DWTA K=6 L=400 on this dataset.
func Amazon670K(scale float64, seed uint64) SyntheticConfig {
	return SyntheticConfig{
		Name:     fmt.Sprintf("amazon-670k@%.3g", scale),
		Features: scaleDim(135909, scale, 256),
		Labels:   scaleDim(670091, scale, 64),
		// 0.055% of 135,909 ≈ 75 non-zeros per sample, from ~5 labels'
		// prototypes plus noise.
		TrainSize:     scaleDim(490449, scale, 512),
		TestSize:      scaleDim(153025, scale, 128),
		PrototypeNNZ:  12,
		MaxLabels:     5,
		ZipfS:         1.0,
		NoiseFeatures: 15,
		Seed:          seed,
	}
}

// WikiLSH325K returns the WikiLSHTC-325K-like workload (Table 1 row 2:
// 1,617,899 features at 0.0026% density, 325,056 labels, 1,778,351 train /
// 587,084 test) scaled by scale. The paper trains hidden=128, batch 256,
// DWTA K=5 L=350 on this dataset.
func WikiLSH325K(scale float64, seed uint64) SyntheticConfig {
	return SyntheticConfig{
		Name:      fmt.Sprintf("wikilsh-325k@%.3g", scale),
		Features:  scaleDim(1617899, scale, 256),
		Labels:    scaleDim(325056, scale, 64),
		TrainSize: scaleDim(1778351, scale, 512),
		TestSize:  scaleDim(587084, scale, 128),
		// 0.0026% of 1.6M ≈ 42 non-zeros per sample, ~3 labels.
		PrototypeNNZ:  13,
		MaxLabels:     3,
		ZipfS:         1.0,
		NoiseFeatures: 6,
		Seed:          seed,
	}
}
