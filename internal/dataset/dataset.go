// Package dataset provides the three workloads of the paper's evaluation
// (§5.1, Table 1) behind one Dataset type:
//
//   - an XMC/SVMlight-style parser so the real Amazon-670K, WikiLSHTC-325K
//     and preprocessed Text8 files drop in when available;
//   - planted-model synthetic generators matching Table 1's statistics at a
//     configurable scale (the substitution documented in DESIGN.md), so all
//     experiments run self-contained;
//   - a Text8-like synthetic corpus with the word2vec skip-gram extraction
//     (window 2) the paper uses.
//
// Batches are materialized in either of the §4.1 memory layouts (coalesced
// CSR or fragmented) via the Iter epoch iterator.
package dataset

import (
	"fmt"
	"math/rand/v2"

	"github.com/slide-cpu/slide/internal/sparse"
)

// Dataset is an in-memory multi-label sparse dataset.
type Dataset struct {
	// Name labels the workload (e.g. "amazon-670k@0.05").
	Name string
	// Features is the input dimensionality; Labels the label-space size.
	Features int
	Labels   int

	data *sparse.CSRBatch
}

// New wraps a coalesced batch as a dataset. The batch is not validated;
// callers parsing untrusted input should run Validate.
func New(name string, features, labels int, data *sparse.CSRBatch) *Dataset {
	return &Dataset{Name: name, Features: features, Labels: labels, data: data}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.data.Len() }

// Sample returns sample i's feature vector (aliases storage).
func (d *Dataset) Sample(i int) sparse.Vector { return d.data.Sample(i) }

// LabelsOf returns sample i's label ids (aliases storage).
func (d *Dataset) LabelsOf(i int) []int32 { return d.data.Labels(i) }

// Data returns the full dataset as one coalesced batch.
func (d *Dataset) Data() sparse.Batch { return d.data }

// Validate checks every sample against the declared dimensions.
func (d *Dataset) Validate() error {
	if err := sparse.Validate(d.data, d.Features); err != nil {
		return fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	for i := 0; i < d.Len(); i++ {
		for _, y := range d.LabelsOf(i) {
			if y < 0 || int(y) >= d.Labels {
				return fmt.Errorf("dataset %s: sample %d label %d out of range [0,%d)",
					d.Name, i, y, d.Labels)
			}
		}
	}
	return nil
}

// Head returns a dataset view of the first n samples (n clamped), used for
// evaluation slices.
func (d *Dataset) Head(n int) *Dataset {
	n = min(n, d.Len())
	var b sparse.Builder
	for i := 0; i < n; i++ {
		v := d.Sample(i)
		b.Add(v.Indices, v.Values, d.LabelsOf(i))
	}
	csr, err := b.CSR()
	if err != nil {
		// n >= 1 is guaranteed by callers; an empty head is a usage bug.
		panic(fmt.Sprintf("dataset: Head(%d) of empty dataset", n))
	}
	return New(d.Name+"/head", d.Features, d.Labels, csr)
}

// Stats summarizes the dataset in Table 1's terms.
type Stats struct {
	Name          string
	Features      int
	Labels        int
	Samples       int
	AvgFeatureNNZ float64
	// FeatureSparsity is AvgFeatureNNZ / Features (the "Feature Sparsity"
	// column of Table 1).
	FeatureSparsity float64
	AvgLabels       float64
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{Name: d.Name, Features: d.Features, Labels: d.Labels, Samples: d.Len()}
	var nnz, lab int64
	for i := 0; i < d.Len(); i++ {
		nnz += int64(d.Sample(i).NNZ())
		lab += int64(len(d.LabelsOf(i)))
	}
	if d.Len() > 0 {
		s.AvgFeatureNNZ = float64(nnz) / float64(d.Len())
		s.AvgLabels = float64(lab) / float64(d.Len())
	}
	if d.Features > 0 {
		s.FeatureSparsity = s.AvgFeatureNNZ / float64(d.Features)
	}
	return s
}

// ModelParams returns the parameter count of the paper's architecture
// (features→hidden→labels fully connected) on this dataset — the
// "# Model Parameters" column of Table 1.
func (d *Dataset) ModelParams(hidden int) int64 {
	return int64(d.Features)*int64(hidden) + int64(hidden)*int64(d.Labels) +
		int64(hidden) + int64(d.Labels)
}

// BatchIter iterates one shuffled epoch in fixed-size batches, materializing
// each batch in the requested memory layout.
type BatchIter struct {
	d      *Dataset
	perm   []int
	pos    int
	size   int
	layout sparse.Layout
	b      sparse.Builder
}

// Iter starts a shuffled epoch. seed fixes the permutation; batchSize must
// be positive.
func (d *Dataset) Iter(batchSize int, layout sparse.Layout, seed uint64) *BatchIter {
	if batchSize <= 0 {
		panic("dataset: batch size must be positive")
	}
	rng := rand.New(rand.NewPCG(seed, 0x9E3779B97F4A7C15))
	return &BatchIter{
		d:      d,
		perm:   rng.Perm(d.Len()),
		size:   batchSize,
		layout: layout,
	}
}

// Next returns the next batch, or (nil, false) at epoch end. The final batch
// may be short.
func (it *BatchIter) Next() (sparse.Batch, bool) {
	if it.pos >= len(it.perm) {
		return nil, false
	}
	it.b.Reset()
	end := min(it.pos+it.size, len(it.perm))
	for ; it.pos < end; it.pos++ {
		i := it.perm[it.pos]
		v := it.d.Sample(i)
		it.b.Add(v.Indices, v.Values, it.d.LabelsOf(i))
	}
	batch, err := it.b.Build(it.layout)
	if err != nil {
		return nil, false
	}
	return batch, true
}

// Batches returns the number of batches in the epoch.
func (it *BatchIter) Batches() int {
	return (len(it.perm) + it.size - 1) / it.size
}
