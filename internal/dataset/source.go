package dataset

import (
	"fmt"
	"io"
	"math/rand/v2"

	"github.com/slide-cpu/slide/internal/sparse"
)

// Source is a resettable batch iterator — the data-feeding contract of the
// training session engine (internal/train) and of the public slide.Trainer.
//
// A Source yields one *pass* (epoch) of batches per Reset: Next returns
// successive batches until the pass is exhausted, then io.EOF; Reset begins
// a new pass. The seed passed to Reset drives any shuffling, so a pass is a
// pure function of (source construction, seed) — the property the trainer's
// bit-identical resume and the legacy TrainEpoch equivalence rest on.
// Implementations that cannot shuffle (sequential streams) may ignore the
// seed. Sources are not safe for concurrent use.
type Source interface {
	// Name labels the workload for logs and reports.
	Name() string
	// Features is the input dimensionality (exclusive index bound).
	Features() int
	// Labels is the label-space size.
	Labels() int
	// Reset begins a new pass. seed fixes the pass's shuffle (where the
	// implementation shuffles at all).
	Reset(seed uint64) error
	// Next returns the next batch of the current pass, or io.EOF when the
	// pass is exhausted. The final batch of a pass may be short. The
	// returned batch is valid until the next Next or Reset call.
	Next() (sparse.Batch, error)
}

// Sized is implemented by sources with a known, fixed number of batches per
// pass. The trainer uses it to fast-forward a resumed session to its
// mid-epoch position deterministically.
type Sized interface {
	// BatchesPerEpoch returns the number of batches one pass yields.
	BatchesPerEpoch() int
}

// MemorySource adapts an in-memory Dataset to the Source contract. Each pass
// iterates d.Iter(batchSize, layout, seed) — the exact iterator the legacy
// Model.TrainEpoch drove — so a MemorySource pass is bit-identical to a
// TrainEpoch over the same dataset with the same seed.
type MemorySource struct {
	d      *Dataset
	size   int
	layout sparse.Layout
	it     *BatchIter
}

// NewMemorySource wraps an in-memory dataset. batchSize must be positive and
// d non-empty. Reset must be called before the first Next.
func NewMemorySource(d *Dataset, batchSize int, layout sparse.Layout) (*MemorySource, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("dataset: memory source needs a non-empty dataset")
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("dataset: batch size %d must be positive", batchSize)
	}
	return &MemorySource{d: d, size: batchSize, layout: layout}, nil
}

// Name implements Source.
func (s *MemorySource) Name() string { return s.d.Name }

// Features implements Source.
func (s *MemorySource) Features() int { return s.d.Features }

// Labels implements Source.
func (s *MemorySource) Labels() int { return s.d.Labels }

// Reset implements Source: a fresh shuffled pass over the dataset.
func (s *MemorySource) Reset(seed uint64) error {
	s.it = s.d.Iter(s.size, s.layout, seed)
	return nil
}

// Next implements Source.
func (s *MemorySource) Next() (sparse.Batch, error) {
	if s.it == nil {
		return nil, fmt.Errorf("dataset: memory source used before Reset")
	}
	b, ok := s.it.Next()
	if !ok {
		return nil, io.EOF
	}
	return b, nil
}

// BatchesPerEpoch implements Sized.
func (s *MemorySource) BatchesPerEpoch() int {
	return (s.d.Len() + s.size - 1) / s.size
}

// SyntheticSource streams the planted-model synthetic workload without ever
// materializing a dataset: each pass draws PassSize fresh samples from the
// generator, batch by batch. Pass p re-seeds the generator RNG with the
// Reset seed, so a pass is reproducible while successive passes (different
// seeds) see fresh data — the infinite-stream training scenario.
type SyntheticSource struct {
	cfg      SyntheticConfig
	zipf     *Zipf
	size     int
	passSize int

	rng    *rand.Rand
	idxSet map[int32]float32
	b      sparse.Builder
	left   int
	ready  bool
}

// NewSyntheticSource builds a streaming generator source. cfg.TrainSize is
// the pass length (samples per epoch); batchSize must be positive.
func NewSyntheticSource(cfg SyntheticConfig, batchSize int) (*SyntheticSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("dataset: batch size %d must be positive", batchSize)
	}
	zipf, err := NewZipf(cfg.Labels, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	return &SyntheticSource{
		cfg: cfg, zipf: zipf, size: batchSize, passSize: cfg.TrainSize,
		idxSet: make(map[int32]float32),
	}, nil
}

// Name implements Source.
func (s *SyntheticSource) Name() string { return s.cfg.Name }

// Features implements Source.
func (s *SyntheticSource) Features() int { return s.cfg.Features }

// Labels implements Source.
func (s *SyntheticSource) Labels() int { return s.cfg.Labels }

// Reset implements Source: a fresh pass of passSize generated samples.
func (s *SyntheticSource) Reset(seed uint64) error {
	s.rng = rand.New(rand.NewPCG(s.cfg.Seed, seed))
	s.left = s.passSize
	s.ready = true
	return nil
}

// Next implements Source.
func (s *SyntheticSource) Next() (sparse.Batch, error) {
	if !s.ready {
		return nil, fmt.Errorf("dataset: synthetic source used before Reset")
	}
	if s.left == 0 {
		return nil, io.EOF
	}
	n := min(s.size, s.left)
	s.left -= n
	s.b.Reset()
	for i := 0; i < n; i++ {
		idx, val, labels := synthSample(&s.cfg, s.zipf, s.rng, s.idxSet)
		s.b.Add(idx, val, labels)
	}
	csr, err := s.b.CSR()
	if err != nil {
		return nil, err
	}
	return csr, nil
}

// BatchesPerEpoch implements Sized.
func (s *SyntheticSource) BatchesPerEpoch() int {
	return (s.passSize + s.size - 1) / s.size
}
