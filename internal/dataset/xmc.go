package dataset

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"

	"github.com/slide-cpu/slide/internal/sparse"
)

// The extreme-classification repository format (Bhatia et al. 2016), used by
// the real Amazon-670K and WikiLSHTC-325K dumps:
//
//	header:  <numSamples> <numFeatures> <numLabels>
//	line:    l1,l2,...  f1:v1 f2:v2 ...
//
// A sample with no labels has an empty label field (the line starts with a
// space).

// xmcHeader is the first line of an XMC file: sample count and dimensions.
type xmcHeader struct {
	Samples, Features, Labels int
}

// readXMCHeader parses the header line from an already-positioned scanner.
func readXMCHeader(sc *bufio.Scanner) (xmcHeader, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return xmcHeader{}, fmt.Errorf("dataset: reading XMC header: %w", err)
		}
		return xmcHeader{}, fmt.Errorf("dataset: empty XMC input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 {
		return xmcHeader{}, fmt.Errorf("dataset: XMC header needs 3 fields, got %q", sc.Text())
	}
	nSamples, err1 := strconv.Atoi(header[0])
	nFeatures, err2 := strconv.Atoi(header[1])
	nLabels, err3 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || err3 != nil || nSamples <= 0 || nFeatures <= 0 || nLabels <= 0 {
		return xmcHeader{}, fmt.Errorf("dataset: invalid XMC header %q", sc.Text())
	}
	return xmcHeader{Samples: nSamples, Features: nFeatures, Labels: nLabels}, nil
}

// xmcLine parses one sample line ("l1,l2 f1:v1 f2:v2 ...") against the header
// dimensions, returning freshly allocated sorted/deduplicated slices. kv is a
// caller-owned scratch map reused across lines.
func xmcLine(line string, lineNo int, h xmcHeader, kv map[int32]float32) (idx []int32, val []float32, labels []int32, err error) {
	labelPart, featPart, _ := strings.Cut(line, " ")

	if labelPart != "" {
		for _, tok := range strings.Split(labelPart, ",") {
			y, err := strconv.Atoi(tok)
			if err != nil || y < 0 || y >= h.Labels {
				return nil, nil, nil, fmt.Errorf("dataset: line %d: bad label %q", lineNo, tok)
			}
			labels = append(labels, int32(y))
		}
		slices.Sort(labels)
		labels = slices.Compact(labels)
	}

	clear(kv)
	for _, tok := range strings.Fields(featPart) {
		fs, vs, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, nil, nil, fmt.Errorf("dataset: line %d: bad feature token %q", lineNo, tok)
		}
		f, err := strconv.Atoi(fs)
		if err != nil || f < 0 || f >= h.Features {
			return nil, nil, nil, fmt.Errorf("dataset: line %d: bad feature index %q", lineNo, fs)
		}
		v, err := strconv.ParseFloat(vs, 32)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("dataset: line %d: bad feature value %q", lineNo, vs)
		}
		kv[int32(f)] = float32(v)
	}
	idx = make([]int32, 0, len(kv))
	for f := range kv {
		idx = append(idx, f)
	}
	slices.Sort(idx)
	val = make([]float32, len(idx))
	for k, f := range idx {
		val[k] = kv[f]
	}
	return idx, val, labels, nil
}

// ReadXMC parses a dataset in the XMC repository format. Feature indices are
// sorted and de-duplicated per sample (last value wins); out-of-range
// indices are an error.
func ReadXMC(name string, r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)

	h, err := readXMCHeader(sc)
	if err != nil {
		return nil, err
	}
	nFeatures, nLabels := h.Features, h.Labels

	var b sparse.Builder
	lineNo := 1
	kv := map[int32]float32{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		idx, val, labels, err := xmcLine(line, lineNo, h, kv)
		if err != nil {
			return nil, err
		}
		b.Add(idx, val, labels)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading XMC line %d: %w", lineNo, err)
	}
	nSamples := h.Samples
	if got := b.Len(); got != nSamples {
		return nil, fmt.Errorf("dataset: XMC header declares %d samples, file has %d", nSamples, got)
	}
	csr, err := b.CSR()
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return New(name, nFeatures, nLabels, csr), nil
}

// WriteXMC serializes a dataset in the XMC repository format.
func WriteXMC(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", d.Len(), d.Features, d.Labels); err != nil {
		return err
	}
	for i := 0; i < d.Len(); i++ {
		labels := d.LabelsOf(i)
		for k, y := range labels {
			if k > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(y))); err != nil {
				return err
			}
		}
		v := d.Sample(i)
		for k, f := range v.Indices {
			if _, err := fmt.Fprintf(bw, " %d:%s", f,
				strconv.FormatFloat(float64(v.Values[k]), 'g', -1, 32)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
