package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadXMC exercises the untrusted-input parser: it must never panic and
// must either reject the input or produce a dataset whose round trip through
// WriteXMC re-parses to the same shape.
func FuzzReadXMC(f *testing.F) {
	f.Add("1 10 5\n1,2 0:1 3:0.5\n")
	f.Add("2 10 5\n 1:0.5 3:0.25\n2,4 0:1\n")
	f.Add("1 10 5\nbad\n")
	f.Add("")
	f.Add("3 4 5")
	f.Add("1 1 1\n0 0:nan\n")
	f.Add("1 10 5\n0 5:1e300\n")
	f.Add("1 2 2\n1 \n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadXMC("fuzz", strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted input must serialize and re-parse to the same shape.
		var buf bytes.Buffer
		if err := WriteXMC(&buf, d); err != nil {
			t.Fatalf("WriteXMC failed on accepted input: %v", err)
		}
		d2, err := ReadXMC("fuzz2", &buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\nserialized: %q",
				err, input, buf.String())
		}
		if d2.Len() != d.Len() || d2.Features != d.Features || d2.Labels != d.Labels {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				d.Len(), d.Features, d.Labels, d2.Len(), d2.Features, d2.Labels)
		}
		for i := 0; i < d.Len(); i++ {
			if d.Sample(i).NNZ() != d2.Sample(i).NNZ() {
				t.Fatalf("sample %d nnz changed", i)
			}
		}
	})
}
